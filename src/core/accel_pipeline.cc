#include "core/accel_pipeline.h"

#include <algorithm>
#include <memory>

#include "common/logging.h"
#include "sim/clock.h"

namespace deepstore::core {

namespace {

/** Mutable state of one pipeline run, driven by event callbacks. */
struct PipelineState
{
    sim::EventQueue &events;
    ssd::FlashController &channel;
    ssd::FlashParams params;
    PipelineRunConfig config;
    ssd::FeatureLayout layout;

    std::uint64_t totalPages = 0;
    std::uint64_t pagesIssued = 0;
    std::uint64_t pagesCompleted = 0;
    std::uint64_t pagesFreed = 0;
    std::uint64_t inflight = 0;

    std::uint64_t featuresDone = 0;
    bool computing = false;
    Tick computeIdleSince = 0;

    PipelineRunStats stats;

    PipelineState(sim::EventQueue &ev, ssd::FlashController &ch,
                  const ssd::FlashParams &p,
                  const PipelineRunConfig &cfg)
        : events(ev), channel(ch), params(p), config(cfg),
          layout{cfg.featureBytes, p.pageBytes}
    {
        totalPages = layout.pagesForFeatures(cfg.features);
        computeIdleSince = ev.now();
    }

    /** Page address for the i-th page of this channel's stripe:
     *  round-robin chips, then planes, then advance block/page. */
    ssd::PageAddress
    pageAddress(std::uint64_t i) const
    {
        ssd::PageAddress a;
        a.channel = channel.channelId();
        a.chip = static_cast<std::uint32_t>(i % params.chipsPerChannel);
        std::uint64_t r = i / params.chipsPerChannel;
        a.plane = static_cast<std::uint32_t>(r % params.planesPerChip);
        r /= params.planesPerChip;
        a.page = static_cast<std::uint32_t>(r % params.pagesPerBlock);
        a.block = static_cast<std::uint32_t>(
            (r / params.pagesPerBlock) % params.blocksPerPlane);
        return a;
    }

    /** Pages currently occupying FLASH_DFV slots (buffered or in
     *  flight). */
    std::uint64_t
    slotsUsed() const
    {
        return inflight + (pagesCompleted - pagesFreed);
    }

    bool
    nextFeatureReady() const
    {
        if (featuresDone >= config.features)
            return false;
        return pagesCompleted >=
               layout.pagesForFeatures(featuresDone + 1);
    }
};

void tryCompute(const std::shared_ptr<PipelineState> &st);

void
issueReads(const std::shared_ptr<PipelineState> &st)
{
    while (st->pagesIssued < st->totalPages &&
           st->slotsUsed() < st->config.queueDepthPages) {
        std::uint64_t idx = st->pagesIssued++;
        ++st->inflight;
        ssd::FlashCommand cmd;
        cmd.op = ssd::FlashOp::Read;
        cmd.addr = st->pageAddress(idx);
        cmd.transferBytes = st->layout.transferBytesPerPage();
        cmd.onComplete = [st](Tick) {
            --st->inflight;
            ++st->pagesCompleted;
            ++st->stats.pageReads;
            tryCompute(st);
        };
        st->channel.issue(std::move(cmd));
    }
}

void
tryCompute(const std::shared_ptr<PipelineState> &st)
{
    if (st->computing)
        return;
    if (!st->nextFeatureReady()) {
        // Starved (or finished): account idle time from now until
        // the next start.
        return;
    }
    // Account starvation between the previous completion and now.
    st->stats.starvedSeconds +=
        ticksToSeconds(st->events.now() - st->computeIdleSince);
    st->computing = true;
    sim::Clock clock(st->config.frequencyHz);
    Tick busy = clock.cyclesToTicks(st->config.computeCyclesPerFeature);
    st->stats.computeBusySeconds += ticksToSeconds(busy);
    st->events.scheduleAfter(busy, [st] {
        st->computing = false;
        ++st->featuresDone;
        st->computeIdleSince = st->events.now();
        // Free the FLASH_DFV slots of fully consumed pages. A page
        // shared with the *next* feature (packed layout) stays
        // buffered until that feature is done with it.
        std::uint64_t consumed =
            st->layout.pagesForFeatures(st->featuresDone);
        if (st->featuresDone < st->config.features && consumed > 0 &&
            st->layout.pagesForFeatures(st->featuresDone + 1) ==
                consumed) {
            --consumed;
        }
        st->pagesFreed = std::max(st->pagesFreed, consumed);
        issueReads(st);
        tryCompute(st);
    });
}

} // namespace

PipelineRunStats
runAcceleratorPipeline(sim::EventQueue &events,
                       ssd::FlashController &channel,
                       const ssd::FlashParams &params,
                       const PipelineRunConfig &config)
{
    if (config.features == 0 || config.featureBytes == 0)
        fatal("pipeline run needs features and a feature size");
    if (config.computeCyclesPerFeature == 0)
        fatal("pipeline run needs a per-feature compute cost");
    if (config.queueDepthPages == 0)
        fatal("FLASH_DFV queue depth must be at least 1");

    auto st = std::make_shared<PipelineState>(events, channel, params,
                                              config);
    Tick start = events.now();
    issueReads(st);
    events.run();
    if (st->featuresDone != config.features)
        panic("pipeline stalled: %llu of %llu features done",
              static_cast<unsigned long long>(st->featuresDone),
              static_cast<unsigned long long>(config.features));
    st->stats.featuresProcessed = st->featuresDone;
    st->stats.totalSeconds = ticksToSeconds(events.now() - start);
    return st->stats;
}

} // namespace deepstore::core
