#include "core/accel_pipeline.h"

#include <algorithm>

#include "common/logging.h"
#include "common/stats.h"
#include "core/scan_core.h"
#include "sim/clock.h"
#include "ssd/dfv_stream.h"

namespace deepstore::core {

namespace {

/** Page address for the i-th page of this channel's stripe:
 *  round-robin chips, then planes, then advance block/page — the
 *  §4.4 layout restricted to one channel (identical to
 *  Geometry::decode for a one-channel SSD, which is what makes the
 *  live engine path and this standalone run comparable
 *  tick-for-tick). */
ssd::PageAddress
pageAddress(std::uint64_t i, std::uint32_t channel_id,
            const ssd::FlashParams &params)
{
    ssd::PageAddress a;
    a.channel = channel_id;
    a.chip = static_cast<std::uint32_t>(i % params.chipsPerChannel);
    std::uint64_t r = i / params.chipsPerChannel;
    a.plane = static_cast<std::uint32_t>(r % params.planesPerChip);
    r /= params.planesPerChip;
    a.page = static_cast<std::uint32_t>(r % params.pagesPerBlock);
    a.block = static_cast<std::uint32_t>(
        (r / params.pagesPerBlock) % params.blocksPerPlane);
    return a;
}

} // namespace

PipelineRunStats
runAcceleratorPipeline(sim::EventQueue &events,
                       ssd::FlashController &channel,
                       const ssd::FlashParams &params,
                       const PipelineRunConfig &config)
{
    if (config.features == 0 || config.featureBytes == 0)
        fatal("pipeline run needs features and a feature size");
    if (config.computeCyclesPerFeature == 0 &&
        config.layerCycles.empty())
        fatal("pipeline run needs a per-feature compute cost");
    if (config.queueDepthPages == 0)
        fatal("FLASH_DFV queue depth must be at least 1");
    if (config.weightBytesPerSlot > 0 && config.dramBandwidth <= 0.0)
        fatal("weight streaming needs a DRAM bandwidth");

    ssd::FeatureLayout layout{config.featureBytes, params.pageBytes};
    const std::uint64_t total_pages =
        layout.pagesForFeatures(config.features);
    const std::uint64_t transfer_bytes =
        layout.transferBytesPerPage();

    // Single-controller shim: every plan page targets this channel.
    StatGroup stream_stats;
    ssd::DfvStreamService service(
        events,
        [&channel](std::uint32_t) -> ssd::FlashController & {
            return channel;
        },
        stream_stats);

    ScanStepShape shape;
    if (config.featureBytes <= params.pageBytes) {
        shape.pageReadsPerStep = 1;
        shape.featuresPerStep = layout.featuresPerPage();
    } else {
        shape.pageReadsPerStep = layout.pagesPerFeature();
        shape.featuresPerStep = 1;
    }

    // A burst must end on a step boundary or the refill barrier
    // would wait forever on pages the scan cannot consume.
    const std::uint32_t prs =
        static_cast<std::uint32_t>(shape.pageReadsPerStep);
    std::uint32_t depth = config.queueDepthPages;
    depth = std::max(prs, depth - depth % prs);

    ssd::DfvPlan plan;
    plan.pages.reserve(total_pages);
    for (std::uint64_t i = 0; i < total_pages; ++i)
        plan.pages.push_back(
            pageAddress(i, channel.channelId(), params));
    plan.transferBytesPerPage = transfer_bytes;
    plan.queueDepthPages = depth;
    plan.perChannelIssueInterval = secondsToTicks(
        1.0 / ssd::channelPageRate(params, transfer_bytes));

    const Tick start = events.now();
    const Tick noc_wait_start = channel.bus().waitTicks();
    ComputeArbiter arbiter;
    // Local stand-in for the device's shared DRAM channel: the only
    // weight-stream consumer here is this run, so the link starts
    // idle — exactly the state a single live query sees.
    sim::BandwidthLink dram("pipeline.dram",
                            config.dramBandwidth > 0.0
                                ? config.dramBandwidth
                                : 1.0);
    ssd::DfvStream &stream = service.open(std::move(plan));
    GroupScan scan(events, arbiter, &stream, shape,
                   config.featuresPerSlot > 0 ? config.featuresPerSlot
                                              : 1);
    sim::Clock clock(config.frequencyHz);
    ScanMember member;
    member.id = 0;
    member.features = config.features;
    if (!config.layerCycles.empty()) {
        member.layerBurstTicks.reserve(config.layerCycles.size());
        for (Cycles c : config.layerCycles)
            member.layerBurstTicks.push_back(clock.cyclesToTicks(c));
    } else {
        member.layerBurstTicks.push_back(
            clock.cyclesToTicks(config.computeCyclesPerFeature));
    }
    if (config.weightBytesPerSlot > 0)
        member.weights = std::make_shared<WeightStream>(
            &dram, config.weightBytesPerSlot);
    scan.addMember(std::move(member));
    bool finished = false;
    scan.onGroupDone([&finished] { finished = true; });
    scan.start();
    events.run();
    if (!finished)
        panic("pipeline stalled: %llu of %llu features done",
              static_cast<unsigned long long>(scan.position()),
              static_cast<unsigned long long>(config.features));

    PipelineRunStats stats;
    stats.pageReads = stream.pagesDelivered();
    stats.backpressureSeconds =
        ticksToSeconds(stream.backpressureTicks());
    service.close(stream);
    stats.featuresProcessed = config.features;
    stats.totalSeconds = ticksToSeconds(events.now() - start);
    stats.computeBusySeconds =
        ticksToSeconds(scan.computeBusyTicks());
    stats.starvedSeconds = ticksToSeconds(scan.starvedTicks());
    stats.weightStallSeconds =
        ticksToSeconds(scan.weightStallTicks());
    stats.nocWaitSeconds =
        ticksToSeconds(channel.bus().waitTicks() - noc_wait_start);
    return stats;
}

} // namespace deepstore::core
