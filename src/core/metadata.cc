#include "core/metadata.h"

#include <algorithm>
#include <cstring>

#include "common/logging.h"

namespace deepstore::core {

namespace {

constexpr std::uint64_t kMetadataMagic = 0x4454454D53445344ULL;

void
putU64(std::vector<std::uint8_t> &out, std::uint64_t v)
{
    const auto *b = reinterpret_cast<const std::uint8_t *>(&v);
    out.insert(out.end(), b, b + sizeof(v));
}

std::uint64_t
getU64(const std::vector<std::uint8_t> &in, std::size_t &pos)
{
    if (pos + 8 > in.size())
        fatal("metadata blob truncated at offset %zu", pos);
    std::uint64_t v;
    std::memcpy(&v, in.data() + pos, sizeof(v));
    pos += 8;
    return v;
}

} // namespace

std::uint64_t
MetadataStore::add(DbMetadata metadata)
{
    metadata.dbId = nextId_++;
    std::uint64_t id = metadata.dbId;
    table_[id] = metadata;
    return id;
}

const DbMetadata &
MetadataStore::lookup(std::uint64_t db_id) const
{
    auto it = table_.find(db_id);
    if (it == table_.end())
        fatal("unknown db_id %llu",
              static_cast<unsigned long long>(db_id));
    return it->second;
}

void
MetadataStore::update(const DbMetadata &metadata)
{
    auto it = table_.find(metadata.dbId);
    if (it == table_.end())
        fatal("update of unknown db_id %llu",
              static_cast<unsigned long long>(metadata.dbId));
    it->second = metadata;
}

std::vector<std::uint8_t>
MetadataStore::serialize() const
{
    std::vector<std::uint8_t> out;
    putU64(out, kMetadataMagic);
    putU64(out, table_.size());
    for (const auto &[id, md] : table_) {
        // The paper's 32-byte record (§4.7.2)...
        putU64(out, md.dbId);
        putU64(out, md.startPpn);
        putU64(out, md.featureBytes);
        putU64(out, md.numFeatures);
        // ...plus the logical start, which the simulation needs to
        // drive host-path reads (a real device recovers it from the
        // FTL's own persisted state).
        putU64(out, md.startLpn);
    }
    return out;
}

void
MetadataStore::deserialize(const std::vector<std::uint8_t> &blob)
{
    std::size_t pos = 0;
    if (getU64(blob, pos) != kMetadataMagic)
        fatal("metadata blob corrupt: bad magic");
    std::uint64_t count = getU64(blob, pos);
    std::map<std::uint64_t, DbMetadata> restored;
    std::uint64_t max_id = 0;
    for (std::uint64_t i = 0; i < count; ++i) {
        DbMetadata md;
        md.dbId = getU64(blob, pos);
        md.startPpn = getU64(blob, pos);
        md.featureBytes = getU64(blob, pos);
        md.numFeatures = getU64(blob, pos);
        md.startLpn = getU64(blob, pos);
        if (md.featureBytes == 0 || md.numFeatures == 0)
            fatal("metadata blob corrupt: empty database record");
        restored[md.dbId] = md;
        max_id = std::max(max_id, md.dbId);
    }
    if (pos != blob.size())
        fatal("metadata blob has trailing bytes");
    table_ = std::move(restored);
    nextId_ = max_id + 1;
}

void
MetadataStore::clear()
{
    table_.clear();
    nextId_ = 1;
}

} // namespace deepstore::core
