/**
 * @file
 * Asynchronous query scheduler: event-driven, multi-query-in-flight
 * execution of intelligent queries across the in-storage accelerator
 * complex.
 *
 * The paper's runtime schedules SCN work "map-reduce style" across
 * the accelerators and exposes an asynchronous query/getResults API
 * (§4.7, Table 2). This module supplies the engine side of that
 * contract: each submitted query runs a small state machine
 *
 *   Parsed -> CacheProbe -> Striped -> Scanning -> Reduce -> Complete
 *                 |                                   ^
 *                 +---- hit: rescore cached top-K ----+
 *
 * driven entirely by sim::EventQueue events — the engine never blocks
 * on `events.run()`; callers advance the shared clock via
 * DeepStore::poll()/drain() (or any other timed engine operation).
 *
 * Accelerator instances are **countable resources**. Each placement
 * level owns one AcceleratorUnit per physical accelerator (1 at SSD
 * level, one per channel, one per chip). A query's Striped stage
 * splits its feature range into one shard per unit; a unit admits at
 * most `maxResidentScans` concurrent shards (others wait FIFO), so
 * concurrent queries genuinely queue for, share, and interleave on
 * the hardware.
 *
 * Shards resident on the same unit time-share it under a
 * generalized-processor-sharing model with NCAM-style flash-stream
 * batching: co-resident scans of the *same database* share one DFV
 * stream (the controller reads each page once and broadcasts it into
 * the FLASH_DFV queues), while compute and weight streaming are paid
 * per resident. With k same-database residents the per-feature wall
 * time is
 *
 *     max( flash,  sum_k compute_k,  sum_k weight_k )
 *
 * so a flash-bound workload (the common case at channel level)
 * overlaps up to k scans at almost no latency cost — this is where
 * multi-query throughput comes from. With k = 1 the expression
 * collapses to the steady-state per-feature time of the analytic
 * model, so single-query latency is unchanged by the refactor.
 *
 * Per-query latency is defined as completion tick - submit tick
 * (queueing included); the TimeLedger owns all time accounting.
 */

#ifndef DEEPSTORE_CORE_QUERY_SCHEDULER_H
#define DEEPSTORE_CORE_QUERY_SCHEDULER_H

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "core/placement.h"
#include "sim/event_queue.h"

namespace deepstore::core {

/** Lifecycle states of an in-flight query (§4.7.1). */
enum class QueryState
{
    Parsed,     ///< validated, not yet probing the Query Cache
    CacheProbe, ///< QCN scoring against cached queries
    Striped,    ///< shards being placed onto accelerator units
    Scanning,   ///< shards resident/waiting on accelerator units
    Reduce,     ///< merging per-accelerator partial top-Ks
    Complete,   ///< results available via getResults()
};

const char *toString(QueryState s);

/** Scheduler tuning knobs. */
struct QuerySchedulerConfig
{
    /**
     * Max concurrent scan shards resident on one accelerator unit;
     * additional shards wait FIFO. Bounds the interleaving degree
     * (and the FLASH_DFV buffering the controller must provide).
     */
    std::uint32_t maxResidentScans = 8;
};

/** Everything the scheduler needs to time one query. The functional
 *  work (scoring, merging, cache insert) stays in the engine's
 *  `finalize` callback, invoked exactly once at completion time. */
struct QuerySubmission
{
    std::uint64_t queryId = 0;
    Level level = Level::ChannelLevel;
    std::uint32_t numAccelerators = 0;

    /** Features per accelerator shard (fractional stripes keep the
     *  aggregate identical to the analytic model). */
    double shardFeatures = 0.0;

    // Per-accelerator, per-feature service legs (LevelPerf).
    double computeSecondsPerFeature = 0.0;
    double flashSecondsPerFeature = 0.0;
    double weightSecondsPerFeature = 0.0;
    /** Additive per-feature exposure that overlap cannot hide (the
     *  FLASH_DFV refill latency, LevelPerf's remainder above the max
     *  of the three legs). Shared per dbKey group like the flash
     *  stream. */
    double exposedSecondsPerFeature = 0.0;

    /** Flash-stream sharing group (database id): co-resident shards
     *  with equal keys share one DFV stream. */
    std::uint64_t dbKey = 0;

    /** Query Cache probe latency charged before striping (0 without
     *  a cache). */
    double probeSeconds = 0.0;

    /** Probe outcome decided at submit time. */
    bool cacheHit = false;

    /** SCN rescore latency over the cached top-K (hit path only). */
    double hitComputeSeconds = 0.0;

    /** Runs at completion (state already Complete, clock at the
     *  completion tick). */
    std::function<void()> finalize;
};

/** The asynchronous scheduler (see file comment). */
class QueryScheduler
{
  public:
    QueryScheduler(sim::EventQueue &events,
                   QuerySchedulerConfig config);
    ~QueryScheduler();

    QueryScheduler(const QueryScheduler &) = delete;
    QueryScheduler &operator=(const QueryScheduler &) = delete;

    /** Accept a validated query; returns immediately after
     *  scheduling its state machine. */
    void submit(QuerySubmission submission);

    /** State of a submitted query (nullopt when unknown). */
    std::optional<QueryState> state(std::uint64_t query_id) const;

    /** Queries submitted but not yet Complete. */
    std::size_t inFlight() const { return inFlight_; }

    /** Total queries completed so far. */
    std::uint64_t completedCount() const { return completed_; }

    Tick submitTick(std::uint64_t query_id) const;
    Tick completeTick(std::uint64_t query_id) const;

    /**
     * Hook invoked whenever the estimated busy-until horizon of the
     * accelerator complex changes (the SSD uses it to answer regular
     * I/O with a busy signal during scans, §4.5).
     */
    void setBusyHook(std::function<void(Tick)> hook)
    {
        busyHook_ = std::move(hook);
    }

    /** Scan shards currently resident across all units (occupancy
     *  introspection for stats/benches). */
    std::size_t residentShards() const;

    /** Scan shards queued behind busy units. */
    std::size_t waitingShards() const;

  private:
    struct QueryInfo;
    class AcceleratorUnit;

    void enterStriped(QueryInfo &q);
    void shardDone(std::uint64_t query_id);
    void completeQuery(QueryInfo &q);
    void updateBusyHorizon();
    std::vector<std::unique_ptr<AcceleratorUnit>> &
    pool(Level level, std::uint32_t count);

    sim::EventQueue &events_;
    QuerySchedulerConfig config_;
    std::map<std::uint64_t, QueryInfo> queries_;
    std::map<Level, std::vector<std::unique_ptr<AcceleratorUnit>>>
        pools_;
    std::function<void(Tick)> busyHook_;
    std::size_t inFlight_ = 0;
    std::uint64_t completed_ = 0;
};

} // namespace deepstore::core

#endif // DEEPSTORE_CORE_QUERY_SCHEDULER_H
