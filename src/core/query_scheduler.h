/**
 * @file
 * Asynchronous query scheduler: event-driven, multi-query-in-flight
 * execution of intelligent queries across the in-storage accelerator
 * complex.
 *
 * The paper's runtime schedules SCN work "map-reduce style" across
 * the accelerators and exposes an asynchronous query/getResults API
 * (§4.7, Table 2). This module supplies the engine side of that
 * contract: each submitted query runs a small state machine
 *
 *   Parsed -> CacheProbe -> Striped -> Scanning -> Reduce -> Complete
 *                 |                                   ^
 *                 +---- hit: rescore cached top-K ----+
 *
 * driven entirely by sim::EventQueue events — the engine never blocks
 * on `events.run()`; callers advance the shared clock via
 * DeepStore::poll()/drain() (or any other timed engine operation).
 *
 * Accelerator instances are **countable resources**. Each placement
 * level owns one AcceleratorUnit per physical accelerator (1 at SSD
 * level, one per channel, one per chip). A query's Striped stage
 * places one shard per unit that physically holds part of its range
 * (the resolveScanPlan striping tables); a unit admits at most
 * `maxResidentScans` concurrent shards (others wait FIFO), so
 * concurrent queries genuinely queue for, share, and interleave on
 * the hardware.
 *
 * The Scanning stage's **flash term is physical**: every shard's
 * feature pages stream through a DfvStream issuing real FlashCommand
 * reads against the same per-channel FlashControllers that serve
 * hostRead/hostWrite — scans and host I/O observably contend for
 * planes and channel buses. Co-resident same-database shards with
 * identical plans share one stream (read-once-broadcast, NCAM-style
 * flash grouping): the controller reads each page once and
 * broadcasts it into every subscriber's FLASH_DFV queue. Compute and
 * weight streaming remain analytic per resident (a per-feature
 * service time on the unit's ComputeArbiter), so a flash-bound
 * workload overlaps up to k same-database scans at almost no latency
 * cost — this is where multi-query throughput comes from. With k = 1
 * the live path reproduces the analytic model's steady-state
 * per-feature time (burst-refill exposure included, produced by the
 * stream's burst barrier rather than an additive closed-form term).
 *
 * Per-query latency is defined as completion tick - submit tick
 * (queueing included); the TimeLedger owns all time accounting.
 */

#ifndef DEEPSTORE_CORE_QUERY_SCHEDULER_H
#define DEEPSTORE_CORE_QUERY_SCHEDULER_H

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "core/placement.h"
#include "sim/event_queue.h"
#include "ssd/dfv_stream.h"

namespace deepstore::core {

/** Lifecycle states of an in-flight query (§4.7.1). */
enum class QueryState
{
    Parsed,     ///< validated, not yet probing the Query Cache
    CacheProbe, ///< QCN scoring against cached queries
    Striped,    ///< shards being placed onto accelerator units
    Scanning,   ///< shards resident/waiting on accelerator units
    Reduce,     ///< merging per-accelerator partial top-Ks
    Complete,   ///< results available via getResults()
};

const char *toString(QueryState s);

/** Scheduler tuning knobs. */
struct QuerySchedulerConfig
{
    /**
     * Max concurrent scan shards resident on one accelerator unit;
     * additional shards wait FIFO. Bounds the interleaving degree
     * (and the FLASH_DFV buffering the controller must provide).
     */
    std::uint32_t maxResidentScans = 8;
};

/** Everything the scheduler needs to time one query. The functional
 *  work (scoring, merging, cache insert) stays in the engine's
 *  `finalize` callback, invoked exactly once at completion time. */
struct QuerySubmission
{
    std::uint64_t queryId = 0;
    Level level = Level::ChannelLevel;
    std::uint32_t numAccelerators = 0;

    /** Per-unit physical scan shards (resolveScanPlan output; units
     *  without features in the range are absent). Plans are moved
     *  into the units' DFV streams on admission. */
    std::vector<UnitScan> shards;

    /** Delivered-pages -> ready-features step shape shared by every
     *  shard (resolveScanPlan output). */
    std::uint64_t pageReadsPerStep = 1;
    std::uint64_t featuresPerStep = 1;

    /** Analytic per-feature service time on the array:
     *  max(compute leg, weight-streaming leg). The flash leg is
     *  physical — it comes from the DFV stream. */
    Tick serviceTicksPerFeature = 0;

    /** Flash-stream sharing group (database id): co-resident shards
     *  with equal keys *and* plan signatures share one DFV stream. */
    std::uint64_t dbKey = 0;

    /** Plan identity (resolveScanPlan signature): joining an
     *  in-flight broadcast stream requires identical per-unit
     *  plans. */
    std::uint64_t planSignature = 0;

    /** Query Cache probe latency charged before striping (0 without
     *  a cache). */
    double probeSeconds = 0.0;

    /** Probe outcome decided at submit time. */
    bool cacheHit = false;

    /** SCN rescore latency over the cached top-K (hit path only). */
    double hitComputeSeconds = 0.0;

    /** Runs at completion (state already Complete, clock at the
     *  completion tick). */
    std::function<void()> finalize;
};

/** The asynchronous scheduler (see file comment). */
class QueryScheduler
{
  public:
    /**
     * @param dfv stream service over the flash controllers that also
     * serve host I/O (the unified datapath). Must outlive the
     * scheduler.
     */
    QueryScheduler(sim::EventQueue &events,
                   QuerySchedulerConfig config,
                   ssd::DfvStreamService &dfv);
    ~QueryScheduler();

    QueryScheduler(const QueryScheduler &) = delete;
    QueryScheduler &operator=(const QueryScheduler &) = delete;

    /** Accept a validated query; returns immediately after
     *  scheduling its state machine. */
    void submit(QuerySubmission submission);

    /** State of a submitted query (nullopt when unknown). */
    std::optional<QueryState> state(std::uint64_t query_id) const;

    /** Queries submitted but not yet Complete. */
    std::size_t inFlight() const { return inFlight_; }

    /** Total queries completed so far. */
    std::uint64_t completedCount() const { return completed_; }

    Tick submitTick(std::uint64_t query_id) const;
    Tick completeTick(std::uint64_t query_id) const;

    /**
     * Hook invoked whenever the estimated busy-until horizon of the
     * accelerator complex changes. The estimate is fed by
     * FlashController::estimateReadCompletion through each live
     * stream's nextDeliveryEstimate() — the Striped-stage load
     * estimate of the physical datapath.
     */
    void setBusyHook(std::function<void(Tick)> hook)
    {
        busyHook_ = std::move(hook);
    }

    /** Scan shards currently resident across all units (occupancy
     *  introspection for stats/benches). */
    std::size_t residentShards() const;

    /** Scan shards queued behind busy units. */
    std::size_t waitingShards() const;

  private:
    struct QueryInfo;
    class AcceleratorUnit;

    void enterStriped(QueryInfo &q);
    void shardDone(std::uint64_t query_id);
    void completeQuery(QueryInfo &q);
    void updateBusyHorizon();
    std::vector<std::unique_ptr<AcceleratorUnit>> &
    pool(Level level, std::uint32_t count);

    sim::EventQueue &events_;
    QuerySchedulerConfig config_;
    ssd::DfvStreamService &dfv_;
    std::map<std::uint64_t, QueryInfo> queries_;
    std::map<Level, std::vector<std::unique_ptr<AcceleratorUnit>>>
        pools_;
    std::function<void(Tick)> busyHook_;
    std::size_t inFlight_ = 0;
    std::uint64_t completed_ = 0;
};

} // namespace deepstore::core

#endif // DEEPSTORE_CORE_QUERY_SCHEDULER_H
