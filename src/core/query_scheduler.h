/**
 * @file
 * Asynchronous query scheduler: event-driven, multi-query-in-flight
 * execution of intelligent queries across the in-storage accelerator
 * complex.
 *
 * The paper's runtime schedules SCN work "map-reduce style" across
 * the accelerators and exposes an asynchronous query/getResults API
 * (§4.7, Table 2). This module supplies the engine side of that
 * contract: each submitted query runs a small state machine
 *
 *   Parsed -> CacheProbe -> Striped -> Scanning -> Reduce -> Complete
 *                 |                        |           ^        |
 *                 +-- hit: rescore top-K --|-----------+        |
 *                                          v                    v
 *                                       Degraded  <-------------+
 *                             (deadline / cancel / lost shards)
 *
 * driven entirely by sim::EventQueue events — the engine never blocks
 * on `events.run()`; callers advance the shared clock via
 * DeepStore::poll()/drain() (or any other timed engine operation).
 *
 * Accelerator instances are **countable resources**. Each placement
 * level owns one AcceleratorUnit per physical accelerator (1 at SSD
 * level, one per channel, one per chip). A query's Striped stage
 * places one shard per unit that physically holds part of its range
 * (the resolveScanPlan striping tables); a unit admits at most
 * `maxResidentScans` concurrent shards (others wait FIFO), so
 * concurrent queries genuinely queue for, share, and interleave on
 * the hardware.
 *
 * The Scanning stage is **entirely event-native**: every shard's
 * feature pages stream through a DfvStream issuing real FlashCommand
 * reads against the same per-channel FlashControllers that serve
 * hostRead/hostWrite — scans and host I/O observably contend for
 * planes and channel buses. Co-resident same-database shards with
 * identical plans share one stream (read-once-broadcast, NCAM-style
 * flash grouping): the controller reads each page once and
 * broadcasts it into every subscriber's FLASH_DFV queue. Compute is
 * not a closed-form quotient either: each shard carries the systolic
 * slot schedule (per-layer compute bursts per feature) replayed on
 * its unit's ComputeArbiter, non-resident weights re-stream over the
 * shared SSD DRAM link once per lockstep slot (WeightStream), the QC
 * probe fans out as compute bursts + DRAM reads across the channel
 * accelerators, and the final top-K reduce is a DRAM transfer of the
 * per-shard partials. All DRAM traffic — weights, probe reads, hit
 * rescores, reduce gathers, FTL relocation copies — arbitrates on
 * the one BandwidthLink the engine wires in via
 * QuerySchedulerConfig::dram.
 *
 * Fault tolerance (the shard-level recovery state machine): the
 * FaultConfig schedule can kill whole accelerator units at a tick;
 * a per-shard watchdog catches silently-slow shards. In both cases
 * the dead/stuck shard's *remaining* feature range is re-striped
 * onto an alive sibling unit at the same level (falling back to the
 * parent level when no sibling survives), with bounded retries and
 * exponential backoff in simulated time. A query whose shards
 * exhaust their retry budget — or that hits its deadline, or is
 * cancelled — finishes in the Degraded terminal state, reporting the
 * fraction of its range that was actually scanned. Every recovery
 * decision is a deterministic consequence of the (seeded) fault
 * schedule, so degraded runs replay bit-identically; with an empty
 * schedule the datapath is tick-identical to a fault-free build.
 *
 * Per-query latency is defined as completion tick - submit tick
 * (queueing included); runStats() exposes the per-query contention
 * decomposition (probe, compute stall, backpressure, reduce).
 */

#ifndef DEEPSTORE_CORE_QUERY_SCHEDULER_H
#define DEEPSTORE_CORE_QUERY_SCHEDULER_H

#include <cstdint>
#include <deque>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <vector>

#include "common/fault_injector.h"
#include "common/stats.h"
#include "core/placement.h"
#include "sim/bandwidth.h"
#include "sim/event_queue.h"
#include "ssd/dfv_stream.h"

namespace deepstore::core {

struct ScanGroupSnapshot;

/** Lifecycle states of an in-flight query (§4.7.1). */
enum class QueryState
{
    Parsed,     ///< validated, not yet probing the Query Cache
    CacheProbe, ///< QCN scoring against cached queries
    Striped,    ///< shards being placed onto accelerator units
    Scanning,   ///< shards resident/waiting on accelerator units
    Reduce,     ///< merging per-accelerator partial top-Ks
    Complete,   ///< full-coverage results available via getResults()
    Degraded,   ///< terminal with partial (possibly zero) coverage
};

const char *toString(QueryState s);

/** True for the two terminal states (Complete and Degraded). */
bool isTerminal(QueryState s);

/** Why a query reached its terminal state. */
enum class QueryOutcome
{
    Success,          ///< full coverage (state Complete)
    Degraded,         ///< shards lost coverage (retries exhausted)
    DeadlineExceeded, ///< deadline fired before the scan finished
    Aborted,          ///< cancelled via cancel()
    PowerLoss,        ///< the device lost power mid-query
};

const char *toString(QueryOutcome o);

/** Scheduler tuning knobs. */
struct QuerySchedulerConfig
{
    /**
     * Max concurrent scan shards resident on one accelerator unit;
     * additional shards wait FIFO. Bounds the interleaving degree
     * (and the FLASH_DFV buffering the controller must provide).
     */
    std::uint32_t maxResidentScans = 8;

    /** Fault schedule (accelerator-unit failures consult the
     *  AcceleratorUnit domain). Empty by default. */
    FaultConfig faults;

    /** Per-shard watchdog: a shard (waiting or scanning) that has
     *  not finished within this many simulated seconds of placement
     *  is snatched and re-striped. 0 disables. */
    double shardWatchdogSeconds = 0.0;

    /** Re-striping budget per shard (across unit deaths and watchdog
     *  fires); an exhausted shard abandons its remainder and the
     *  query degrades. */
    std::uint32_t maxShardRetries = 2;

    /** Backoff before the first re-dispatch; doubles per retry. */
    double shardRetryBackoffSeconds = 100e-6;

    /** Accelerator count per level (indexed by Level's underlying
     *  value), used to build the *parent*-level pool when re-striping
     *  has to fall back a level. 0 = unknown (no fallback possible
     *  unless that pool already exists). */
    std::uint32_t unitsAtLevel[3] = {0, 0, 0};

    /** Shared SSD DRAM channel that weight streams, probe reads,
     *  hit rescores, and reduce gathers arbitrate on (the engine
     *  passes the Ssd's link so scans contend with FTL relocation
     *  copies). nullptr = infinite DRAM bandwidth. Must outlive the
     *  scheduler. */
    sim::BandwidthLink *dram = nullptr;
};

/** Everything the scheduler needs to time one query. The functional
 *  work (scoring, merging, cache insert) stays in the engine's
 *  `finalize` callback, invoked exactly once at completion time. */
struct QuerySubmission
{
    std::uint64_t queryId = 0;
    Level level = Level::ChannelLevel;
    std::uint32_t numAccelerators = 0;

    /** Per-unit physical scan shards (resolveScanPlan output; units
     *  without features in the range are absent). Plans are moved
     *  into the units' DFV streams on admission. */
    std::vector<UnitScan> shards;

    /** Delivered-pages -> ready-features step shape shared by every
     *  shard (resolveScanPlan output). */
    std::uint64_t pageReadsPerStep = 1;
    std::uint64_t featuresPerStep = 1;

    /** Per-feature compute bursts on the array, one per model layer
     *  (the systolic slot schedule lowered onto the unit's clock via
     *  layerBurstTicks()). The flash leg comes from the DFV stream;
     *  the weight leg from the shared DRAM link. */
    std::vector<Tick> layerBurstTicksPerFeature;

    /** Lockstep slot width in features (wsGroupSize on
     *  weight-stationary placements, 1 otherwise). */
    std::uint64_t featuresPerSlot = 1;

    /** Non-resident weight bytes re-streamed over the DRAM link per
     *  lockstep slot (0 = fully resident model). */
    std::uint64_t weightBytesPerSlot = 0;

    /** True when one DRAM weight transfer per slot is broadcast to
     *  every shard (shared L2 / WS lockstep); false when each shard
     *  pulls a private copy. */
    bool weightBroadcast = false;

    /** Flash-stream sharing group (database id): co-resident shards
     *  with equal keys *and* plan signatures share one DFV stream. */
    std::uint64_t dbKey = 0;

    /** Plan identity (resolveScanPlan signature): joining an
     *  in-flight broadcast stream requires identical per-unit
     *  plans. */
    std::uint64_t planSignature = 0;

    /** Channel-level accelerators the Query Cache probe fans out
     *  over (0 = no cache, probe is free). */
    std::uint32_t probeUnits = 0;

    /** QCN compute burst per probe unit (its share of the cached
     *  entries, lowered onto the probe array's clock). */
    Tick probeComputeTicksPerUnit = 0;

    /** Cached-entry bytes each probe unit pulls over the DRAM link
     *  before scoring. */
    std::uint64_t probeDramBytesPerUnit = 0;

    /** Probe outcome decided at submit time. */
    bool cacheHit = false;

    /** SCN rescore burst over the cached top-K on one channel
     *  accelerator (hit path only). */
    Tick hitComputeTicks = 0;

    /** Cached-result feature bytes the hit rescore pulls over the
     *  DRAM link. */
    std::uint64_t hitDramBytes = 0;

    /** Bytes of per-shard partial top-K the reduce stage gathers
     *  over the DRAM link per shard (0 = free reduce). */
    std::uint64_t reduceBytesPerShard = 0;

    /** Optional deadline relative to submission; a query still in
     *  flight when it fires terminates Degraded with outcome
     *  DeadlineExceeded. 0 = no deadline. */
    double deadlineSeconds = 0.0;

    /** Runs at completion (state already terminal, clock at the
     *  completion tick). */
    std::function<void()> finalize;
};

/** Per-query timing decomposition accumulated by the event-native
 *  datapath (ticks; convert with ticksToSeconds). */
struct QueryRunStats
{
    /** Ticks the query's scan groups stalled compute: flash
     *  starvation plus weight-stream waits. */
    Tick computeStallTicks = 0;
    /** Ticks the query's streams sat fully delivered, blocked on
     *  compute (bounded FLASH_DFV backpressure). */
    Tick backpressureTicks = 0;
    /** Scheduled Query Cache probe duration (0 without a cache). */
    Tick probeTicks = 0;
    /** Scheduled top-K reduce duration (DRAM gather of the
     *  per-shard partials). */
    Tick reduceTicks = 0;
};

/** The asynchronous scheduler (see file comment). */
class QueryScheduler
{
  public:
    /**
     * @param dfv stream service over the flash controllers that also
     * serve host I/O (the unified datapath). Must outlive the
     * scheduler.
     * @param stats counter sink for the sched.* fault/recovery
     * counters (nullptr keeps a private group — counters still
     * accumulate but are not dumped with the SSD's).
     */
    QueryScheduler(sim::EventQueue &events,
                   QuerySchedulerConfig config,
                   ssd::DfvStreamService &dfv,
                   StatGroup *stats = nullptr);
    ~QueryScheduler();

    QueryScheduler(const QueryScheduler &) = delete;
    QueryScheduler &operator=(const QueryScheduler &) = delete;

    /** Accept a validated query; returns immediately after
     *  scheduling its state machine. */
    void submit(QuerySubmission submission);

    /**
     * Cancel an in-flight query: its shards are detached from their
     * units (in-flight flash drains harmlessly in the background)
     * and it terminates immediately in the Degraded state with
     * outcome Aborted. @return false for unknown or already-terminal
     * queries.
     */
    bool cancel(std::uint64_t query_id);

    /**
     * Whole-device power loss: every non-terminal query terminates
     * *now* with outcome PowerLoss, crediting the features its
     * shards actually scanned (honest partial coverage — their
     * finalize callbacks run synchronously, before volatile device
     * state is dropped). Queries already terminal are untouched.
     */
    void powerLoss();

    /**
     * Whole-drive failure generalization of powerLoss(): every
     * non-terminal query terminates *now* with the given outcome,
     * crediting honest partial coverage (finalizes run
     * synchronously). The array coordinator uses this on node death
     * (outcome Degraded) before re-striping the remainder onto
     * replicas; powerLoss() is failAllInFlight(PowerLoss).
     */
    void failAllInFlight(QueryOutcome outcome);

    /** State of a submitted query (nullopt when unknown). */
    std::optional<QueryState> state(std::uint64_t query_id) const;

    /** Terminal outcome of a query; only meaningful once the query
     *  reached a terminal state (fatal for unknown ids). */
    QueryOutcome outcome(std::uint64_t query_id) const;

    /** Features actually scanned / features requested, in [0, 1].
     *  1.0 for full-coverage (and cache-hit) completions. */
    double coverageFraction(std::uint64_t query_id) const;

    /** Exact features scanned from good pages (the coverage
     *  numerator) — the array coordinator sums these across
     *  per-node sub-queries without float round-trips. */
    std::uint64_t coveredFeatures(std::uint64_t query_id) const;

    /** Exact features requested (the coverage denominator; 0 for
     *  cache-hit submissions, which carry no shards). */
    std::uint64_t totalFeatures(std::uint64_t query_id) const;

    /** Queries submitted but not yet terminal. */
    std::size_t inFlight() const { return inFlight_; }

    /** Total queries that reached a terminal state so far. */
    std::uint64_t completedCount() const { return completed_; }

    Tick submitTick(std::uint64_t query_id) const;
    Tick completeTick(std::uint64_t query_id) const;

    /** Contention decomposition of a submitted query (fatal for
     *  unknown ids; partial until the query is terminal). */
    QueryRunStats runStats(std::uint64_t query_id) const;

    /**
     * Hook invoked whenever the estimated busy-until horizon of the
     * accelerator complex changes. The estimate is fed by
     * FlashController::estimateReadCompletion through each live
     * stream's nextDeliveryEstimate() — the Striped-stage load
     * estimate of the physical datapath.
     */
    void setBusyHook(std::function<void(Tick)> hook)
    {
        busyHook_ = std::move(hook);
    }

    /** Scan shards currently resident across all units (occupancy
     *  introspection for stats/benches). */
    std::size_t residentShards() const;

    /** Scan shards queued behind busy units. */
    std::size_t waitingShards() const;

  private:
    struct QueryInfo;
    class AcceleratorUnit;
    struct ShardRemnant;

    /** Scheduler-side state of one shard (stable across
     *  re-striping; `features` is the current incarnation's
     *  remaining target). */
    struct ShardState
    {
        std::uint64_t queryId = 0;
        std::uint64_t features = 0;
        std::uint32_t retries = 0;
        Level level = Level::ChannelLevel;
        std::uint32_t unitIndex = 0;
    };

    void enterStriped(QueryInfo &q);
    void shardDone(std::uint64_t seq, std::uint64_t features_ok,
                   const ScanGroupSnapshot &snap);
    void shardFailed(ShardRemnant remnant);
    void finishShard(QueryInfo &q, std::uint64_t seq);
    void degradeQuery(QueryInfo &q, QueryOutcome outcome);
    void completeQuery(QueryInfo &q, QueryOutcome outcome);
    void updateBusyHorizon();
    std::vector<std::unique_ptr<AcceleratorUnit>> &
    pool(Level level, std::uint32_t count);
    /** Alive sibling at the same level (excluding `exclude` when
     *  possible), else the first alive unit walking up parent
     *  levels; nullopt when nothing is left. */
    std::optional<std::pair<Level, std::uint32_t>>
    chooseUnit(Level level, std::uint32_t exclude);

    sim::EventQueue &events_;
    QuerySchedulerConfig config_;
    ssd::DfvStreamService &dfv_;
    FaultInjector injector_;
    StatGroup ownStats_;
    StatGroup &stats_;
    std::map<std::uint64_t, QueryInfo> queries_;
    std::map<std::uint64_t, ShardState> shards_;
    std::map<Level, std::vector<std::unique_ptr<AcceleratorUnit>>>
        pools_;
    std::function<void(Tick)> busyHook_;
    std::size_t inFlight_ = 0;
    std::uint64_t completed_ = 0;
    std::uint64_t nextShardSeq_ = 1;
};

} // namespace deepstore::core

#endif // DEEPSTORE_CORE_QUERY_SCHEDULER_H
