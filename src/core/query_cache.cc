#include "core/query_cache.h"

#include "common/logging.h"

namespace deepstore::core {

QueryCache::QueryCache(QueryCacheConfig config, ScoreFn score)
    : config_(config), score_(std::move(score))
{
    if (config_.capacity == 0)
        fatal("query cache capacity must be positive");
    if (config_.qcnAccuracy <= 0.0 || config_.qcnAccuracy > 1.0)
        fatal("QCN accuracy must be in (0, 1]");
    setThreshold(config_.threshold);
    if (!score_)
        fatal("query cache needs a QCN scoring function");
}

void
QueryCache::setThreshold(double threshold)
{
    if (threshold < 0.0 || threshold >= 1.0)
        fatal("threshold must be in [0, 1) (got %g)", threshold);
    config_.threshold = threshold;
}

CacheLookup
QueryCache::lookup(std::uint64_t query_id)
{
    CacheLookup out;
    auto best = entries_.end();
    // Algorithm 1: scan every valid entry, keep the max score.
    for (auto it = entries_.begin(); it != entries_.end(); ++it) {
        double s =
            score_(query_id, it->queryId) * config_.qcnAccuracy;
        ++out.entriesScanned;
        if (s > out.bestScore) {
            out.bestScore = s;
            best = it;
        }
    }
    if (best != entries_.end() &&
        (1.0 - out.bestScore) <= config_.threshold) {
        out.hit = true;
        out.matchedQuery = best->queryId;
        out.cachedResults = best->results;
        // QC.promote(max_index): move to MRU position.
        entries_.splice(entries_.begin(), entries_, best);
        ++hits_;
    } else {
        ++misses_;
    }
    return out;
}

void
QueryCache::insert(std::uint64_t query_id,
                   std::vector<ScoredResult> results)
{
    auto it = index_.find(query_id);
    if (it != index_.end()) {
        it->second->results = std::move(results);
        entries_.splice(entries_.begin(), entries_, it->second);
        return;
    }
    if (entries_.size() == config_.capacity) {
        index_.erase(entries_.back().queryId);
        entries_.pop_back();
    }
    entries_.push_front(Entry{query_id, std::move(results)});
    index_[query_id] = entries_.begin();
}

void
QueryCache::invalidateAll()
{
    entries_.clear();
    index_.clear();
}

void
QueryCache::resetStats()
{
    hits_ = 0;
    misses_ = 0;
}

} // namespace deepstore::core
