/**
 * @file
 * Versioned, checksummed superblock-0 image replicated on every array
 * node (DESIGN.md §12).
 *
 * The image bundles the engine's `MetadataStore` table with the
 * coordinator's serialized shard map under one epoch-stamped,
 * checksummed header. `persistMetadata()` writes the encoded image to
 * the reserved metadata block of *every* alive node through real
 * flash programs; recovery reads the image back from each node,
 * discards torn or corrupt copies by checksum, and adopts the highest
 * surviving epoch — so the array rebuilds its striping from any
 * surviving majority, including after node-0 death.
 *
 * Decoding is deliberately *non-fatal*: a capacitor-backed flush that
 * lost power mid-write leaves a torn image (some pages new, some
 * stale) whose checksum no longer matches, and recovery must treat
 * that as "this replica is gone", not as a crash.
 */

#ifndef DEEPSTORE_CORE_ARRAY_SUPERBLOCK_H
#define DEEPSTORE_CORE_ARRAY_SUPERBLOCK_H

#include <cstdint>
#include <optional>
#include <vector>

namespace deepstore::core {

/** One decoded superblock-0 image. */
struct SuperblockImage
{
    /** Monotonic persistence epoch; highest valid copy wins. */
    std::uint64_t epoch = 0;
    /** MetadataStore::serialize() payload. */
    std::vector<std::uint8_t> metadataBlob;
    /** ArrayCoordinator::serializeShardMap() payload. */
    std::vector<std::uint8_t> shardMapBlob;
};

/**
 * Encode an image: 40-byte header (magic, epoch, blob lengths,
 * checksum) followed by the two payloads. The checksum covers the
 * epoch, both lengths, and every payload byte, so any torn or
 * bit-flipped copy is detected.
 */
std::vector<std::uint8_t>
encodeSuperblock(const SuperblockImage &image);

/**
 * Decode an encoded image. Returns nullopt — never fatals — when the
 * bytes are truncated, carry the wrong magic, or fail the checksum
 * (all three are what a torn flush looks like on recovery).
 */
std::optional<SuperblockImage>
decodeSuperblock(const std::vector<std::uint8_t> &bytes);

/**
 * Total encoded byte length promised by a header fragment (its magic
 * plus the two blob lengths). nullopt when the fragment is short,
 * mis-magicked, or claims an implausible length. Recovery uses it to
 * size the remainder read from each replica; the value is untrusted
 * until the assembled image passes decodeSuperblock().
 */
std::optional<std::uint64_t>
superblockImageBytes(const std::vector<std::uint8_t> &bytes);

} // namespace deepstore::core

#endif // DEEPSTORE_CORE_ARRAY_SUPERBLOCK_H
