/**
 * @file
 * Database metadata management (paper §4.4, §4.7.2).
 *
 * Writing a database produces a 32-byte metadata record — db_id,
 * starting physical address, per-feature size, and feature count —
 * persisted in a reserved flash block and cached in SSD DRAM for fast
 * lookup during query execution. The query engine hands the record
 * (plus channel/chip counts) to the accelerator controllers, which
 * compute each feature's physical address by pure offset arithmetic,
 * skipping FTL translation.
 */

#ifndef DEEPSTORE_CORE_METADATA_H
#define DEEPSTORE_CORE_METADATA_H

#include <cstdint>
#include <map>
#include <vector>

#include "ssd/throughput.h"

namespace deepstore::core {

/** The 32-byte per-database metadata record of §4.7.2. */
struct DbMetadata
{
    std::uint64_t dbId = 0;
    /** Starting physical page number of the striped database. */
    std::uint64_t startPpn = 0;
    /** Bytes per feature vector. */
    std::uint64_t featureBytes = 0;
    /** Number of feature vectors stored. */
    std::uint64_t numFeatures = 0;

    // Derived (not part of the 32-byte record).
    std::uint64_t startLpn = 0; ///< logical placement

    /** Pages this database occupies. */
    std::uint64_t
    pageCount(std::uint64_t page_bytes) const
    {
        ssd::FeatureLayout layout{featureBytes, page_bytes};
        return layout.pagesForFeatures(numFeatures);
    }

    /**
     * Physical page of the index-th feature, by offset arithmetic
     * (the controller-side fast path of §4.4).
     */
    std::uint64_t
    featurePpn(std::uint64_t index, std::uint64_t page_bytes) const
    {
        ssd::FeatureLayout layout{featureBytes, page_bytes};
        if (featureBytes <= page_bytes)
            return startPpn + index / layout.featuresPerPage();
        return startPpn + index * layout.pagesPerFeature();
    }
};

/** DRAM-cached metadata table keyed by db_id. */
class MetadataStore
{
  public:
    MetadataStore() = default;

    /** Register a new database; returns its assigned db_id. */
    std::uint64_t add(DbMetadata metadata);

    /** Lookup; fatal() on an unknown db_id (host error). */
    const DbMetadata &lookup(std::uint64_t db_id) const;

    /** Update an existing record (appendDB grows numFeatures). */
    void update(const DbMetadata &metadata);

    bool contains(std::uint64_t db_id) const
    {
        return table_.count(db_id) != 0;
    }

    std::size_t size() const { return table_.size(); }

    /** Serialized size of the persisted table (32 B per record). */
    std::uint64_t
    persistedBytes() const
    {
        return table_.size() * 32;
    }

    /**
     * Serialize the table for the reserved flash block (§4.4):
     * a 16-byte header (magic + record count) followed by the
     * 32-byte records.
     */
    std::vector<std::uint8_t> serialize() const;

    /**
     * Replace the table with the contents of a serialized blob.
     * fatal() on a corrupt blob. The id allocator resumes after the
     * largest restored id.
     */
    void deserialize(const std::vector<std::uint8_t> &blob);

    void clear();

  private:
    std::map<std::uint64_t, DbMetadata> table_;
    std::uint64_t nextId_ = 1;
};

} // namespace deepstore::core

#endif // DEEPSTORE_CORE_METADATA_H
