#include "core/trace_replay.h"

#include <algorithm>
#include <vector>

#include "common/logging.h"

namespace deepstore::core {

ReplayStats
replayTrace(const workloads::QueryTrace &trace,
            const ReplayService &service, QueryCache *cache)
{
    if (service.scanSeconds <= 0.0)
        fatal("replay needs a positive scan time");
    ReplayStats stats;
    stats.queries = trace.size();
    if (trace.size() == 0)
        return stats;

    std::vector<double> response;
    response.reserve(trace.size());
    double server_free = 0.0;
    double busy = 0.0;
    std::uint64_t misses = 0;

    for (const auto &rec : trace.records()) {
        double service_time;
        if (cache) {
            CacheLookup out = cache->lookup(rec.queryId);
            if (out.hit) {
                service_time =
                    service.lookupSeconds + service.hitExtraSeconds;
            } else {
                cache->insert(rec.queryId, {});
                service_time =
                    service.lookupSeconds + service.scanSeconds;
                ++misses;
            }
        } else {
            service_time = service.scanSeconds;
            ++misses;
        }
        double start = std::max(rec.arrivalSeconds, server_free);
        double finish = start + service_time;
        server_free = finish;
        busy += service_time;
        response.push_back(finish - rec.arrivalSeconds);
    }

    std::sort(response.begin(), response.end());
    auto pct = [&](double p) {
        auto idx = static_cast<std::size_t>(
            p * static_cast<double>(response.size() - 1));
        return response[idx];
    };
    double sum = 0.0;
    for (double r : response)
        sum += r;
    stats.meanSeconds = sum / static_cast<double>(response.size());
    stats.p50Seconds = pct(0.50);
    stats.p95Seconds = pct(0.95);
    stats.p99Seconds = pct(0.99);
    stats.maxSeconds = response.back();
    stats.missRate = static_cast<double>(misses) /
                     static_cast<double>(trace.size());
    double span = std::max(trace.durationSeconds(), server_free);
    stats.utilization = span > 0.0 ? busy / span : 0.0;
    stats.throughput =
        span > 0.0 ? static_cast<double>(trace.size()) / span : 0.0;
    return stats;
}

} // namespace deepstore::core
