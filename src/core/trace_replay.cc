#include "core/trace_replay.h"

#include <algorithm>
#include <vector>

#include "common/logging.h"

namespace deepstore::core {

ReplayStats
replayTraceClosedForm(const workloads::QueryTrace &trace,
                      const ReplayService &service, QueryCache *cache)
{
    if (service.scanSeconds <= 0.0)
        fatal("replay needs a positive scan time");
    ReplayStats stats;
    stats.queries = trace.size();
    if (trace.size() == 0)
        return stats;

    std::vector<double> response;
    response.reserve(trace.size());
    double server_free = 0.0;
    double busy = 0.0;
    std::uint64_t misses = 0;

    for (const auto &rec : trace.records()) {
        double service_time;
        if (cache) {
            CacheLookup out = cache->lookup(rec.queryId);
            if (out.hit) {
                service_time =
                    service.lookupSeconds + service.hitExtraSeconds;
            } else {
                cache->insert(rec.queryId, {});
                service_time =
                    service.lookupSeconds + service.scanSeconds;
                ++misses;
            }
        } else {
            service_time = service.scanSeconds;
            ++misses;
        }
        double start = std::max(rec.arrivalSeconds, server_free);
        double finish = start + service_time;
        server_free = finish;
        busy += service_time;
        response.push_back(finish - rec.arrivalSeconds);
    }

    std::sort(response.begin(), response.end());
    auto pct = [&](double p) {
        auto idx = static_cast<std::size_t>(
            p * static_cast<double>(response.size() - 1));
        return response[idx];
    };
    double sum = 0.0;
    for (double r : response)
        sum += r;
    stats.meanSeconds = sum / static_cast<double>(response.size());
    stats.p50Seconds = pct(0.50);
    stats.p95Seconds = pct(0.95);
    stats.p99Seconds = pct(0.99);
    stats.maxSeconds = response.back();
    stats.missRate = static_cast<double>(misses) /
                     static_cast<double>(trace.size());
    double span = std::max(trace.durationSeconds(), server_free);
    stats.utilization = span > 0.0 ? busy / span : 0.0;
    stats.throughput =
        span > 0.0 ? static_cast<double>(trace.size()) / span : 0.0;
    return stats;
}

ReplayStats
replayTrace(DeepStore &store, const workloads::QueryTrace &trace,
            const EngineReplayConfig &config)
{
    if (!config.universe)
        fatal("engine replay needs a query universe");
    if (config.featureDim <= 0)
        fatal("engine replay needs a positive feature dim");

    ReplayStats stats;
    stats.queries = trace.size();
    if (trace.size() == 0)
        return stats;

    const DbMetadata &db = store.databaseInfo(config.dbId);
    std::uint64_t db_end =
        config.dbEnd != 0 ? config.dbEnd : db.numFeatures;

    std::vector<double> response;
    response.reserve(trace.size());
    std::uint64_t misses = 0;
    std::size_t completed = 0;

    sim::EventQueue &events = store.events();
    const Tick start_tick = events.now();
    double busy_before =
        store.ledger().componentSeconds(TimeComponent::Scan) +
        store.ledger().componentSeconds(TimeComponent::CacheHit) +
        store.ledger().componentSeconds(TimeComponent::QcLookup);

    // Arrivals become event-queue events: each submits its query at
    // the trace timestamp, so concurrent queries genuinely overlap.
    for (const auto &rec : trace.records()) {
        Tick at = start_tick + secondsToTicks(rec.arrivalSeconds);
        // lint:allow(D12: the replay loop below drains the queue until every query completes, so these locals outlive every scheduled callback)
        events.schedule(at, [&store, &config, &response, &misses,
                             &completed, db_end, rec] {
            std::vector<float> qfv = config.universe->featureOf(
                rec.queryId, config.featureDim);
            std::uint64_t qid = store.query(
                qfv, config.k, config.modelId, config.dbId,
                config.dbStart, db_end, config.level);
            // lint:allow(D12: completion fires inside the same drained replay loop; response/misses/completed live until it exits)
            store.onComplete(qid, [&response, &misses, &completed](
                                      const QueryResult &res) {
                response.push_back(res.latencySeconds);
                if (!res.cacheHit)
                    ++misses;
                ++completed;
            });
        });
    }

    while (completed < trace.size()) {
        if (!store.step())
            panic("engine replay stalled with %zu of %llu queries "
                  "complete",
                  completed,
                  static_cast<unsigned long long>(trace.size()));
    }

    std::sort(response.begin(), response.end());
    auto pct = [&](double p) {
        auto idx = static_cast<std::size_t>(
            p * static_cast<double>(response.size() - 1));
        return response[idx];
    };
    double sum = 0.0;
    for (double r : response)
        sum += r;
    stats.meanSeconds = sum / static_cast<double>(response.size());
    stats.p50Seconds = pct(0.50);
    stats.p95Seconds = pct(0.95);
    stats.p99Seconds = pct(0.99);
    stats.maxSeconds = response.back();
    stats.missRate = static_cast<double>(misses) /
                     static_cast<double>(trace.size());

    double busy_after =
        store.ledger().componentSeconds(TimeComponent::Scan) +
        store.ledger().componentSeconds(TimeComponent::CacheHit) +
        store.ledger().componentSeconds(TimeComponent::QcLookup);
    double span = ticksToSeconds(events.now() - start_tick);
    stats.utilization =
        span > 0.0 ? (busy_after - busy_before) / span : 0.0;
    stats.throughput =
        span > 0.0 ? static_cast<double>(trace.size()) / span : 0.0;
    return stats;
}

} // namespace deepstore::core
