#include "core/dse_select.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"
#include "core/query_model.h"
#include "energy/energy_model.h"

namespace deepstore::core {

namespace {

/** Scratchpad sizes explored (§4.5 varies the scratchpad per level). */
const std::uint64_t kSpadSizes[] = {256 * KiB, 512 * KiB, 1 * MiB,
                                    2 * MiB, 4 * MiB, 8 * MiB};

Placement
patchedPlacement(const Placement &base, std::int64_t rows,
                 std::int64_t cols, std::uint64_t spad_bytes)
{
    Placement p = base;
    p.array.rows = rows;
    p.array.cols = cols;
    p.array.scratchpadBytes = spad_bytes;
    switch (p.level) {
      case Level::SsdLevel:
      case Level::ChipLevel:
        p.residentWeightBytes = spad_bytes;
        break;
      case Level::ChannelLevel:
        // Weight residency lives in the shared L2 regardless of the
        // private scratchpad size.
        break;
    }
    return p;
}

} // namespace

DseCandidate
evaluateCandidate(Level level, const ssd::FlashParams &flash,
                  const systolic::ArrayConfig &config)
{
    Placement base = makePlacement(level, flash);
    Placement candidate = base;
    candidate.array = config;
    if (level != Level::ChannelLevel)
        candidate.residentWeightBytes = config.scratchpadBytes;

    DeepStoreModel model(flash);
    DseCandidate out;
    out.config = config;
    out.areaMm2 = energy::acceleratorAreaMm2(
        energy::EnergyParams{}, config.peCount(),
        config.scratchpadBytes);

    double log_sum = 0.0;
    int counted = 0;
    double peak_power = 0.0;
    for (const auto &app : workloads::allApps()) {
        LevelPerf perf = model.evaluatePlacement(
            candidate, app.scn, app.featureBytes());
        if (!perf.supported)
            continue;
        log_sum += std::log(perf.perAccelSeconds);
        ++counted;
        double per_accel_power =
            (perf.activePowerW - kSsdBasePowerW) /
            static_cast<double>(perf.placement.numAccelerators);
        peak_power = std::max(peak_power, per_accel_power);
    }
    DS_ASSERT(counted > 0);
    out.meanPerFeatureSeconds =
        std::exp(log_sum / static_cast<double>(counted));
    out.peakPowerW = peak_power;
    // 40% margin on the §4.5 budget slice: our CACTI-like SRAM
    // constants run hotter than the paper's (EXPERIMENTS.md,
    // residual #4), and folding the FLASH_DFV refill exposure into
    // the flash leg (DESIGN.md §10) sped up compute-bound apps,
    // raising their computed active power — so we hold candidates to
    // the same *relative* standard the published configs meet under
    // our energy model.
    out.meetsPowerBudget = peak_power <= base.powerBudgetW * 1.40;
    // Area budget: the Table 3 die sizes, with a 15% margin.
    double area_cap = energy::acceleratorAreaMm2(
                          energy::EnergyParams{},
                          base.array.peCount(),
                          base.array.scratchpadBytes) *
                      1.15;
    out.meetsAreaBudget = out.areaMm2 <= area_cap;
    return out;
}

DseResult
exploreLevel(Level level, const ssd::FlashParams &flash,
             std::int64_t max_pes)
{
    DseResult result;
    result.level = level;
    Placement base = makePlacement(level, flash);

    for (std::int64_t pes = 128; pes <= max_pes; pes *= 2) {
        for (std::int64_t rows = 1; rows <= pes; rows *= 2) {
            std::int64_t cols = pes / rows;
            // Degenerate strips waste the element-wise row lanes
            // (§4.3); bound the aspect ratio like the paper does
            // (512-wide FC bound, 1024-tall conv bound).
            if (cols > 1024 || rows > 1024)
                continue;
            for (std::uint64_t spad : kSpadSizes) {
                Placement candidate =
                    patchedPlacement(base, rows, cols, spad);
                DseCandidate c = evaluateCandidate(level, flash,
                                                   candidate.array);
                result.candidates.push_back(std::move(c));
            }
        }
    }
    std::sort(result.candidates.begin(), result.candidates.end(),
              [](const DseCandidate &a, const DseCandidate &b) {
                  return a.betterThan(b);
              });
    result.table3 = evaluateCandidate(level, flash, base.array);
    return result;
}

} // namespace deepstore::core
