/**
 * @file
 * Query universe and trace generation for the Query Cache study
 * (paper §6.5).
 *
 * The paper generates 100 K queries against a 100 M-image TIR dataset
 * and samples them with uniform and Zipfian popularity. Queries have
 * semantic structure (their example: "a brown dog is running in the
 * sand" vs "a brown dog plays at the beach"), which the QCN scores.
 *
 * We model a universe of distinct queries, each attached to a latent
 * topic. The pairwise QCN score is generated deterministically from
 * the pair identity: repeats of the same query score near 1, distinct
 * same-topic queries (semantic near-duplicates) score high, and
 * cross-topic queries score low. The test suite verifies that a real
 * (functional) QCN over the synthetic features produces the same
 * ordering, which justifies using the closed-form score in the large
 * cache sweeps.
 */

#ifndef DEEPSTORE_WORKLOADS_QUERY_UNIVERSE_H
#define DEEPSTORE_WORKLOADS_QUERY_UNIVERSE_H

#include <cstdint>
#include <vector>

#include "common/rng.h"
#include "workloads/feature_gen.h"

namespace deepstore::workloads {

/** Configuration of the query universe. */
struct QueryUniverseConfig
{
    std::uint64_t numQueries = 100'000;
    std::uint64_t numTopics = 3'000;
    std::uint64_t seed = 42;

    // Deterministic pairwise QCN score parameters.
    double sameQueryScore = 0.99;
    double sameQueryNoise = 0.005;
    double sameTopicScore = 0.92;
    double sameTopicNoise = 0.04;
    double diffTopicScore = 0.35;
    double diffTopicNoise = 0.12;
};

/** Popularity distribution over the query universe. */
enum class Popularity
{
    Uniform,
    Zipf,
};

/** A fixed universe of distinct intelligent queries. */
class QueryUniverse
{
  public:
    explicit QueryUniverse(QueryUniverseConfig config);

    const QueryUniverseConfig &config() const { return config_; }

    /** Latent topic of a query. */
    std::uint64_t topicOf(std::uint64_t query_id) const;

    /**
     * Deterministic, symmetric QCN similarity score in [0, 1] for a
     * pair of queries.
     */
    double qcnScore(std::uint64_t a, std::uint64_t b) const;

    /** Query feature vector (for the functional execution path). */
    std::vector<float> featureOf(std::uint64_t query_id,
                                 std::int64_t dim) const;

    /**
     * Generate a trace of `count` query ids with the given
     * popularity. Zipf uses the provided alpha (0.7 / 0.8 in the
     * paper's Figs. 13-14).
     */
    std::vector<std::uint64_t> trace(std::uint64_t count,
                                     Popularity popularity,
                                     double zipf_alpha,
                                     std::uint64_t seed) const;

  private:
    QueryUniverseConfig config_;
};

} // namespace deepstore::workloads

#endif // DEEPSTORE_WORKLOADS_QUERY_UNIVERSE_H
