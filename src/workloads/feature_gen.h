/**
 * @file
 * Synthetic feature-database generator.
 *
 * Stands in for the paper's trained-model feature extraction
 * (DESIGN.md substitutions): features are drawn around latent topic
 * centroids so that semantic structure exists (same-topic features
 * score higher under the SCN/QCN than cross-topic ones), which is the
 * property the Query Cache experiments depend on. Generation is
 * deterministic per (seed, index) and computed on demand, so
 * billion-entry databases never need to be materialized.
 */

#ifndef DEEPSTORE_WORKLOADS_FEATURE_GEN_H
#define DEEPSTORE_WORKLOADS_FEATURE_GEN_H

#include <cstdint>
#include <vector>

namespace deepstore::workloads {

/** Deterministic latent-topic feature generator. */
class FeatureGenerator
{
  public:
    /**
     * @param dim feature vector length (floats)
     * @param num_topics latent topic count (>= 1)
     * @param seed stream seed; different seeds give disjoint datasets
     * @param noise std-dev of per-feature jitter around the centroid
     */
    FeatureGenerator(std::int64_t dim, std::uint64_t num_topics,
                     std::uint64_t seed, double noise = 0.25);

    /** Topic of the index-th database item. */
    std::uint64_t topicOf(std::uint64_t index) const;

    /** The index-th database feature vector. */
    std::vector<float> featureAt(std::uint64_t index) const;

    /** A fresh feature near the given topic's centroid (for queries). */
    std::vector<float> featureForTopic(std::uint64_t topic,
                                       std::uint64_t jitter_seed) const;

    /** The raw centroid of a topic. */
    std::vector<float> centroid(std::uint64_t topic) const;

    std::int64_t dim() const { return dim_; }
    std::uint64_t numTopics() const { return numTopics_; }

  private:
    std::int64_t dim_;
    std::uint64_t numTopics_;
    std::uint64_t seed_;
    double noise_;
};

} // namespace deepstore::workloads

#endif // DEEPSTORE_WORKLOADS_FEATURE_GEN_H
