#include "workloads/trace.h"

#include <cmath>
#include <istream>
#include <ostream>
#include <sstream>

#include "common/logging.h"

namespace deepstore::workloads {

QueryTrace::QueryTrace(std::vector<TraceRecord> records)
    : records_(std::move(records))
{
    for (std::size_t i = 1; i < records_.size(); ++i) {
        if (records_[i].arrivalSeconds <
            records_[i - 1].arrivalSeconds)
            fatal("trace records must be time-ordered (record %zu)",
                  i);
    }
}

QueryTrace
QueryTrace::generate(const QueryUniverse &universe, std::uint64_t count,
                     double queries_per_second, Popularity popularity,
                     double zipf_alpha, std::uint64_t seed)
{
    if (queries_per_second <= 0.0)
        fatal("arrival rate must be positive");
    auto ids = universe.trace(count, popularity, zipf_alpha, seed);
    Rng rng(seed ^ 0xA5A5A5A5ULL);
    std::vector<TraceRecord> records;
    records.reserve(count);
    double t = 0.0;
    for (std::uint64_t i = 0; i < count; ++i) {
        // Exponential inter-arrival times (Poisson process).
        double u;
        do {
            u = rng.uniform();
        } while (u <= 0.0);
        t += -std::log(u) / queries_per_second;
        records.push_back(TraceRecord{t, ids[i]});
    }
    return QueryTrace(std::move(records));
}

double
QueryTrace::durationSeconds() const
{
    return records_.empty() ? 0.0 : records_.back().arrivalSeconds;
}

void
QueryTrace::save(std::ostream &os) const
{
    os << "# deepstore-query-trace v1\n";
    for (const auto &r : records_)
        os << r.arrivalSeconds << " " << r.queryId << "\n";
}

QueryTrace
QueryTrace::load(std::istream &is)
{
    std::vector<TraceRecord> records;
    std::string line;
    std::size_t lineno = 0;
    while (std::getline(is, line)) {
        ++lineno;
        if (line.empty() || line[0] == '#')
            continue;
        std::istringstream ls(line);
        TraceRecord r;
        if (!(ls >> r.arrivalSeconds >> r.queryId))
            fatal("malformed trace line %zu: '%s'", lineno,
                  line.c_str());
        records.push_back(r);
    }
    return QueryTrace(std::move(records));
}

} // namespace deepstore::workloads
