#include "workloads/query_universe.h"

#include <algorithm>

#include "common/logging.h"

namespace deepstore::workloads {

namespace {

std::uint64_t
mix(std::uint64_t x)
{
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return x ^ (x >> 31);
}

} // namespace

QueryUniverse::QueryUniverse(QueryUniverseConfig config)
    : config_(config)
{
    if (config_.numQueries == 0 || config_.numTopics == 0)
        fatal("query universe needs queries and topics");
}

std::uint64_t
QueryUniverse::topicOf(std::uint64_t query_id) const
{
    return mix(query_id + config_.seed * 0x9E3779B97F4A7C15ULL) %
           config_.numTopics;
}

double
QueryUniverse::qcnScore(std::uint64_t a, std::uint64_t b) const
{
    if (a > b)
        std::swap(a, b); // symmetry
    double base, noise;
    if (a == b) {
        base = config_.sameQueryScore;
        noise = config_.sameQueryNoise;
    } else if (topicOf(a) == topicOf(b)) {
        base = config_.sameTopicScore;
        noise = config_.sameTopicNoise;
    } else {
        base = config_.diffTopicScore;
        noise = config_.diffTopicNoise;
    }
    // Deterministic per-pair jitter.
    Rng rng(mix(a * 0x100000001B3ULL + b) ^ config_.seed);
    double s = rng.gaussian(base, noise);
    return std::clamp(s, 0.0, 1.0);
}

std::vector<float>
QueryUniverse::featureOf(std::uint64_t query_id, std::int64_t dim) const
{
    FeatureGenerator gen(dim, config_.numTopics, config_.seed,
                         /*noise=*/0.15);
    return gen.featureForTopic(topicOf(query_id),
                               query_id * 2654435761ULL + 7);
}

std::vector<std::uint64_t>
QueryUniverse::trace(std::uint64_t count, Popularity popularity,
                     double zipf_alpha, std::uint64_t seed) const
{
    std::vector<std::uint64_t> out;
    out.reserve(count);
    Rng rng(seed);
    if (popularity == Popularity::Uniform) {
        for (std::uint64_t i = 0; i < count; ++i)
            out.push_back(rng.uniformInt(config_.numQueries));
        return out;
    }
    ZipfSampler zipf(config_.numQueries, zipf_alpha);
    // Permute ranks -> query ids so popular queries are spread over
    // the id (and hence topic) space.
    for (std::uint64_t i = 0; i < count; ++i) {
        std::uint64_t rank = zipf.sample(rng);
        out.push_back(mix(rank + config_.seed) % config_.numQueries);
    }
    return out;
}

} // namespace deepstore::workloads
