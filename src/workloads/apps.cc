#include "workloads/apps.h"

#include <algorithm>

#include "common/logging.h"

namespace deepstore::workloads {

using nn::Activation;
using nn::EwOp;
using nn::Layer;
using nn::Model;

namespace {

/**
 * ReId (Ahmed et al. [16]): cross-input difference + 2 conv + 2 FC.
 * Feature: 11264 floats (44 KB) viewed as an 8x8x176 activation map
 * (deep-and-narrow, matching the post-pooling patch features the
 * original network compares).
 * Totals: 4.90 M MACs (9.81 M FLOPs vs 9.8 M published),
 * 2.656 M weights (10.62 MB vs 10.7 MB published). The conv/FC
 * shapes also bound the per-feature parallelism to < 1024 MACs/cycle
 * (conv) and < 512 outputs (FC), which is what produces the paper's
 * Fig. 6 saturation points.
 */
Model
buildReIdScn()
{
    Model m("reid-scn", 11264, false);
    m.addLayer(Layer::elementWise("neighbor-diff", EwOp::Subtract,
                                  11264));
    m.addLayer(Layer::conv2d("conv1", 8, 8, 176, 3, 3, 24));
    m.addLayer(Layer::conv2d("conv2", 6, 6, 24, 3, 3, 280));
    m.addLayer(Layer::fc("fc1", 4480, 512));
    m.addLayer(Layer::fc("fc2", 512, 512, Activation::None));
    m.validate();
    return m;
}

/**
 * MIR (Lu et al. [72]): triplet MatchNet head, 3 FC layers over the
 * concatenated 512-float (2 KB) embeddings.
 * Totals: 0.521 M MACs (1.04 M FLOPs vs 1.05 M), 2.09 MB weights
 * (vs 2 MB).
 */
Model
buildMirScn()
{
    Model m("mir-scn", 512, true);
    m.addLayer(Layer::fc("fc1", 1024, 440));
    m.addLayer(Layer::fc("fc2", 440, 160));
    m.addLayer(Layer::fc("fc3", 160, 2, Activation::None));
    m.validate();
    return m;
}

/**
 * ESTP (Kiapour et al. [48]): 3 FC layers over the concatenated
 * 4096-float (16 KB) garment embeddings.
 * Totals: 2.366 M MACs (4.73 M FLOPs vs 4.72 M), 9.47 MB weights
 * (vs 9 MB).
 */
Model
buildEstpScn()
{
    Model m("estp-scn", 4096, true);
    m.addLayer(Layer::fc("fc1", 8192, 280));
    m.addLayer(Layer::fc("fc2", 280, 256));
    m.addLayer(Layer::fc("fc3", 256, 2, Activation::None));
    m.validate();
    return m;
}

/**
 * TIR (Wang et al. [93]): the §3 description is explicit — a vector
 * product plus FC layers of 512x512, 512x256, 256x2 over 512-float
 * (2 KB) embeddings.
 * Totals: 0.394 M MACs (0.79 M FLOPs, exact), 1.58 MB weights
 * (vs 1.5 MB).
 */
Model
buildTirScn()
{
    Model m("tir-scn", 512, false);
    m.addLayer(Layer::elementWise("fuse", EwOp::Multiply, 512));
    m.addLayer(Layer::fc("fc1", 512, 512));
    m.addLayer(Layer::fc("fc2", 512, 256));
    m.addLayer(Layer::fc("fc3", 256, 2, Activation::None));
    m.validate();
    return m;
}

/**
 * TextQA (Severyn & Moschitti [82]): element-wise fuse + 1 FC over
 * 200-float (0.8 KB) sentence embeddings.
 * Totals: 0.04 M MACs (0.08 M FLOPs, exact), 0.16 MB weights (exact).
 */
Model
buildTextQaScn()
{
    Model m("textqa-scn", 200, false);
    m.addLayer(Layer::elementWise("fuse", EwOp::Multiply, 200));
    m.addLayer(Layer::fc("fc1", 200, 200, Activation::None));
    m.validate();
    return m;
}

/**
 * QCN for the query cache (§4.6): "structure similar to the SCN" but
 * comparing two *query* features. We use a compact two-FC head over
 * the fused query features (for TIR this stands in for the Universal
 * Sentence Encoder similarity of §6.5).
 */
Model
buildQcn(const std::string &name, std::int64_t feature_dim)
{
    Model m(name, feature_dim, false);
    m.addLayer(Layer::elementWise("fuse", EwOp::Multiply, feature_dim));
    std::int64_t hidden = std::min<std::int64_t>(256, feature_dim);
    m.addLayer(Layer::fc("fc1", feature_dim, hidden));
    m.addLayer(Layer::fc("fc2", hidden, 2, Activation::None));
    m.validate();
    return m;
}

} // namespace

const char *
toString(AppId id)
{
    switch (id) {
      case AppId::ReId: return "ReId";
      case AppId::MIR: return "MIR";
      case AppId::ESTP: return "ESTP";
      case AppId::TIR: return "TIR";
      case AppId::TextQA: return "TextQA";
    }
    return "?";
}

AppInfo
makeApp(AppId id)
{
    AppInfo app;
    app.id = id;
    app.name = toString(id);
    switch (id) {
      case AppId::ReId:
        app.type = "Visual";
        app.description =
            "Identify the same person across a database of images";
        app.dataset = "CUHK03";
        app.scn = buildReIdScn();
        app.fig2BatchSizes = {500, 1000, 1500, 2000};
        app.evalBatchSize = 2000;
        break;
      case AppId::MIR:
        app.type = "Audio";
        app.description =
            "Retrieve music based on styles and instrumentations";
        app.dataset = "MagnaTagTune";
        app.scn = buildMirScn();
        app.fig2BatchSizes = {5000, 10000, 20000, 50000};
        app.evalBatchSize = 50000;
        break;
      case AppId::ESTP:
        app.type = "Visual";
        app.description =
            "Online shopping for a garment item from a photo";
        app.dataset = "Street2Shop";
        app.scn = buildEstpScn();
        app.fig2BatchSizes = {5000, 10000, 20000, 50000};
        app.evalBatchSize = 50000;
        break;
      case AppId::TIR:
        app.type = "Text/Image";
        app.description =
            "Retrieve images matching a sentence description";
        app.dataset = "MSCOCO, Flickr30K";
        app.scn = buildTirScn();
        app.fig2BatchSizes = {5000, 10000, 20000, 50000};
        app.evalBatchSize = 50000;
        break;
      case AppId::TextQA:
        app.type = "Text";
        app.description = "Re-rank short text pairs for a question";
        app.dataset = "TREC QA";
        app.scn = buildTextQaScn();
        app.fig2BatchSizes = {10000, 20000, 50000, 100000};
        app.evalBatchSize = 100000;
        break;
    }
    app.qcn = buildQcn(app.scn.name() + "-qcn", app.scn.featureDim());
    return app;
}

std::vector<AppInfo>
allApps()
{
    return {makeApp(AppId::ReId), makeApp(AppId::MIR),
            makeApp(AppId::ESTP), makeApp(AppId::TIR),
            makeApp(AppId::TextQA)};
}

} // namespace deepstore::workloads
