/**
 * @file
 * Timestamped query traces (paper §5: "we implement the query engine
 * that takes a trace of queries... collect the query traces from the
 * applications running on the baseline GPU+SSD system, and pass them
 * as input to the query engine in our simulator").
 *
 * A trace is a sequence of (arrival time, query id) records. The
 * generator produces Poisson arrivals over a QueryUniverse with the
 * chosen popularity; traces round-trip through a simple text format
 * so "collected" traces can be replayed across systems.
 */

#ifndef DEEPSTORE_WORKLOADS_TRACE_H
#define DEEPSTORE_WORKLOADS_TRACE_H

#include <cstdint>
#include <iosfwd>
#include <vector>

#include "workloads/query_universe.h"

namespace deepstore::workloads {

/** One trace entry. */
struct TraceRecord
{
    double arrivalSeconds = 0.0;
    std::uint64_t queryId = 0;

    bool
    operator==(const TraceRecord &o) const
    {
        return arrivalSeconds == o.arrivalSeconds &&
               queryId == o.queryId;
    }
};

/** A timestamped query trace. */
class QueryTrace
{
  public:
    QueryTrace() = default;
    explicit QueryTrace(std::vector<TraceRecord> records);

    /**
     * Generate `count` queries with exponential inter-arrival times
     * (rate `queries_per_second`) drawn from the universe with the
     * given popularity.
     */
    static QueryTrace generate(const QueryUniverse &universe,
                               std::uint64_t count,
                               double queries_per_second,
                               Popularity popularity,
                               double zipf_alpha, std::uint64_t seed);

    const std::vector<TraceRecord> &records() const
    {
        return records_;
    }
    std::size_t size() const { return records_.size(); }
    double durationSeconds() const;

    /** Text serialization: one "arrival_seconds query_id" per line. */
    void save(std::ostream &os) const;

    /** Parse the save() format. fatal() on malformed input. */
    static QueryTrace load(std::istream &is);

  private:
    std::vector<TraceRecord> records_;
};

} // namespace deepstore::workloads

#endif // DEEPSTORE_WORKLOADS_TRACE_H
