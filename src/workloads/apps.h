/**
 * @file
 * The five intelligent-query applications of the paper's workload
 * study (Table 1):
 *
 *   ReId   - person re-identification (visual, CUHK03)
 *   MIR    - music information retrieval (audio, MagnaTagTune)
 *   ESTP   - exact street-to-shop (visual, Street2Shop)
 *   TIR    - text-based image retrieval (text/image, MSCOCO/Flickr30K)
 *   TextQA - question answering re-ranking (text, TREC QA)
 *
 * We re-create each similarity-comparison network with layer shapes
 * chosen so that the published per-application characteristics —
 * feature size, layer-type counts, total FLOPs, and total weight
 * bytes — are reproduced within a few percent. The shapes themselves
 * are synthetic (the paper does not publish them); the timing and
 * energy models depend only on these aggregate characteristics. A
 * test locks every Table 1 column to within 10%.
 */

#ifndef DEEPSTORE_WORKLOADS_APPS_H
#define DEEPSTORE_WORKLOADS_APPS_H

#include <cstdint>
#include <string>
#include <vector>

#include "nn/model.h"

namespace deepstore::workloads {

/** Application identifiers, in Table 1 order. */
enum class AppId
{
    ReId,
    MIR,
    ESTP,
    TIR,
    TextQA,
};

/** One workload-study application. */
struct AppInfo
{
    AppId id;
    std::string name;
    std::string type;        ///< Visual / Audio / Text...
    std::string description; ///< Table 1 description
    std::string dataset;     ///< Table 1 dataset
    nn::Model scn;           ///< similarity comparison network
    nn::Model qcn;           ///< query comparison network (QC, §4.6)

    /** Batch sizes swept in the Fig. 2 characterization. */
    std::vector<std::int64_t> fig2BatchSizes;

    /** Batch size used in the §6.2 evaluation. */
    std::int64_t evalBatchSize = 0;

    /** Feature vector bytes (Table 1 "Feature Size"). */
    std::uint64_t featureBytes() const { return scn.featureBytes(); }
};

/** Build the given application's models and metadata. */
AppInfo makeApp(AppId id);

/** All five applications in Table 1 order. */
std::vector<AppInfo> allApps();

/** Short name ("ReId", "MIR", ...). */
const char *toString(AppId id);

} // namespace deepstore::workloads

#endif // DEEPSTORE_WORKLOADS_APPS_H
