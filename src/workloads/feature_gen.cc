#include "workloads/feature_gen.h"

#include "common/logging.h"
#include "common/rng.h"

namespace deepstore::workloads {

FeatureGenerator::FeatureGenerator(std::int64_t dim,
                                   std::uint64_t num_topics,
                                   std::uint64_t seed, double noise)
    : dim_(dim), numTopics_(num_topics), seed_(seed), noise_(noise)
{
    if (dim <= 0)
        fatal("feature dimension must be positive");
    if (num_topics == 0)
        fatal("need at least one topic");
}

std::uint64_t
FeatureGenerator::topicOf(std::uint64_t index) const
{
    // Topic assignment via a splitmix-style hash of the index so the
    // database interleaves topics (matching the striped layout).
    std::uint64_t x = index + seed_ * 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    return (x ^ (x >> 31)) % numTopics_;
}

std::vector<float>
FeatureGenerator::centroid(std::uint64_t topic) const
{
    Rng rng(seed_ * 1315423911ULL + topic);
    std::vector<float> c(static_cast<std::size_t>(dim_));
    for (auto &v : c)
        v = static_cast<float>(rng.uniform(-1.0, 1.0));
    return c;
}

std::vector<float>
FeatureGenerator::featureForTopic(std::uint64_t topic,
                                  std::uint64_t jitter_seed) const
{
    std::vector<float> f = centroid(topic);
    Rng rng(seed_ ^ (jitter_seed * 0x2545F4914F6CDD1DULL + 17));
    for (auto &v : f)
        v += static_cast<float>(rng.gaussian(0.0, noise_));
    return f;
}

std::vector<float>
FeatureGenerator::featureAt(std::uint64_t index) const
{
    return featureForTopic(topicOf(index), index);
}

} // namespace deepstore::workloads
