/**
 * @file
 * The state-of-the-art baseline the paper compares against (§3, §6.1):
 * a GPU fed from an NVMe SSD, with batches of database feature vectors
 * prefetched to host memory while the GPU runs the similarity
 * comparison network on the previous batch. Also the wimpy-core
 * baseline (§6.2): running the SCN on the SSD's embedded ARM cores.
 */

#ifndef DEEPSTORE_HOST_BASELINE_H
#define DEEPSTORE_HOST_BASELINE_H

#include "host/calibration.h"
#include "ssd/flash_params.h"
#include "workloads/apps.h"

namespace deepstore::host {

/** Per-batch time split reported in Fig. 2. */
struct BatchBreakdown
{
    double ssdReadSeconds = 0.0;
    double memcpySeconds = 0.0;
    double computeSeconds = 0.0;

    /** Sum of components (the Fig. 2 stacked presentation). */
    double
    total() const
    {
        return ssdReadSeconds + memcpySeconds + computeSeconds;
    }

    /** Steady-state per-batch time with prefetch overlap (§3: the
     *  GPU+SSD system prefetches the next batch during compute). */
    double
    pipelinedTotal() const
    {
        return ssdReadSeconds > memcpySeconds + computeSeconds
                   ? ssdReadSeconds
                   : memcpySeconds + computeSeconds;
    }

    /** Fraction of the stacked total spent on storage I/O. */
    double
    ioFraction() const
    {
        double t = total();
        return t > 0.0 ? ssdReadSeconds / t : 0.0;
    }
};

/** Analytical GPU+SSD system model. */
class GpuSsdSystem
{
  public:
    /**
     * @param gpu which GPU generation to model
     * @param num_ssds aggregate external I/O from this many SSDs
     *        (Fig. 10b scales this)
     */
    explicit GpuSsdSystem(GpuSpec gpu, int num_ssds = 1);

    /** Time components for one batch of database features. */
    BatchBreakdown batchTime(const workloads::AppInfo &app,
                             std::int64_t batch) const;

    /**
     * Steady-state per-feature query time with prefetch overlap,
     * at the app's evaluation batch size.
     */
    double perFeatureSeconds(const workloads::AppInfo &app) const;

    /** Wall time to scan a database of `features` entries. */
    double scanSeconds(const workloads::AppInfo &app,
                       std::uint64_t features) const;

    /** System power while querying (GPU board dominates). */
    double powerW() const { return gpu_.averagePowerW; }

    const GpuSpec &gpu() const { return gpu_; }

  private:
    GpuSpec gpu_;
    int numSsds_;
};

/** In-SSD wimpy-core baseline (§6.2). */
class WimpySystem
{
  public:
    explicit WimpySystem(WimpySpec spec = wimpySpec(),
                         ssd::FlashParams flash = {});

    /** Steady-state per-feature query time. */
    double perFeatureSeconds(const workloads::AppInfo &app) const;

  private:
    WimpySpec spec_;
    ssd::FlashParams flash_;
};

} // namespace deepstore::host

#endif // DEEPSTORE_HOST_BASELINE_H
