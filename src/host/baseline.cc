#include "host/baseline.h"

#include <algorithm>

#include "common/logging.h"
#include "ssd/throughput.h"

namespace deepstore::host {

GpuSsdSystem::GpuSsdSystem(GpuSpec gpu, int num_ssds)
    : gpu_(std::move(gpu)), numSsds_(num_ssds)
{
    if (gpu_.effectiveFlops <= 0.0)
        fatal("GPU effective FLOP/s must be positive");
    if (num_ssds < 1)
        fatal("need at least one SSD");
}

BatchBreakdown
GpuSsdSystem::batchTime(const workloads::AppInfo &app,
                        std::int64_t batch) const
{
    DS_ASSERT(batch > 0);
    BatchBreakdown b;
    double bytes = static_cast<double>(app.featureBytes()) *
                   static_cast<double>(batch);
    double ssd_bw =
        effectiveSsdBandwidth(app.id) * static_cast<double>(numSsds_);
    b.ssdReadSeconds = bytes / ssd_bw;
    b.memcpySeconds = bytes / kPcieBandwidth;
    double flops = static_cast<double>(app.scn.totalFlops()) *
                   static_cast<double>(batch);
    b.computeSeconds =
        flops / gpu_.effectiveFlops + kBatchOverheadSeconds;
    return b;
}

double
GpuSsdSystem::perFeatureSeconds(const workloads::AppInfo &app) const
{
    BatchBreakdown b = batchTime(app, app.evalBatchSize);
    return b.pipelinedTotal() / static_cast<double>(app.evalBatchSize);
}

double
GpuSsdSystem::scanSeconds(const workloads::AppInfo &app,
                          std::uint64_t features) const
{
    return perFeatureSeconds(app) * static_cast<double>(features);
}

WimpySystem::WimpySystem(WimpySpec spec, ssd::FlashParams flash)
    : spec_(std::move(spec)), flash_(flash)
{
    if (spec_.effectiveFlops <= 0.0)
        fatal("wimpy effective FLOP/s must be positive");
}

double
WimpySystem::perFeatureSeconds(const workloads::AppInfo &app) const
{
    // The embedded cores sit inside the SSD, so they see the full
    // internal flash bandwidth; compute dominates regardless (§3,
    // Observation 2).
    double compute = static_cast<double>(app.scn.totalFlops()) /
                     spec_.effectiveFlops;
    double flash =
        1.0 / ssd::ssdInternalFeatureRate(flash_, app.featureBytes());
    return std::max(compute, flash);
}

} // namespace deepstore::host
