/**
 * @file
 * Calibration constants for the host-side baseline models.
 *
 * The paper's GPU+SSD baseline is *measured* on a real testbed (Titan
 * Xp / Titan V + Intel DC P4500, §3/§6.1); we cannot re-run that
 * hardware, so this header centralizes the constants that stand in
 * for those measurements (DESIGN.md, substitutions). Values are
 * derived from:
 *
 *  - vendor specs (peak FLOP/s, TDP, PCIe bandwidth);
 *  - the paper's own observations (Volta's SCN layers run 33% faster
 *    than Pascal's, §3; external SSD bandwidth up to 3.2 GB/s, §6.1);
 *  - back-calibration of the *effective* per-application SSD read
 *    bandwidth from the paper's published results. Using Table 4's
 *    channel-level speedups together with our accelerator model gives
 *    a per-app effective bandwidth; notably MIR and TIR (both 2 KB
 *    features) back-solve to the *same* value, which supports the
 *    reading that the baseline's effective storage bandwidth depends
 *    on the feature layout rather than on the app logic.
 *
 * EXPERIMENTS.md discusses the residual differences.
 */

#ifndef DEEPSTORE_HOST_CALIBRATION_H
#define DEEPSTORE_HOST_CALIBRATION_H

#include <string>

#include "common/units.h"
#include "workloads/apps.h"

namespace deepstore::host {

/** A GPU model used by the baseline system. */
struct GpuSpec
{
    std::string name;
    /** Effective FLOP/s sustained on SCN layers (batch-1 GEMV-heavy
     *  kernels run far below peak; ~25-30% of peak FP32). */
    double effectiveFlops = 0.0;
    /** Average board power during SCN execution (nvidia-smi-class). */
    double averagePowerW = 0.0;
};

/** NVIDIA Titan Xp (Pascal), §3. */
inline GpuSpec
pascalSpec()
{
    return GpuSpec{"Titan Xp (Pascal)", 3.5e12, 220.0};
}

/** NVIDIA Titan V (Volta): SCN layers 33% faster than Pascal (§3). */
inline GpuSpec
voltaSpec()
{
    return GpuSpec{"Titan V (Volta)", 4.655e12, 250.0};
}

/** Host PCIe 3.0 x16 effective copy bandwidth (cudaMemcpy, pinned). */
constexpr double kPcieBandwidth = 12.0 * GB;

/** Fixed per-batch overhead (kernel launch + NVMe submission). */
constexpr double kBatchOverheadSeconds = 30e-6;

/**
 * Effective external SSD read bandwidth the baseline achieves for
 * each application's feature database (back-calibrated; see file
 * comment). The P4500's peak sequential 3.2 GB/s is only approached
 * by the large-feature ReId database.
 */
inline double
effectiveSsdBandwidth(workloads::AppId app)
{
    using workloads::AppId;
    switch (app) {
      case AppId::ReId: return 2.80 * GB;
      case AppId::MIR: return 0.68 * GB;
      case AppId::ESTP: return 0.54 * GB;
      case AppId::TIR: return 0.68 * GB;
      case AppId::TextQA: return 1.45 * GB;
    }
    return 3.2 * GB;
}

/** In-SSD embedded CPU complex (8x ARM A57-class, §6.2). */
struct WimpySpec
{
    std::string name = "8x ARM A57 @ 2 GHz";
    /** Effective FLOP/s on batch-1 SCN kernels: the cores are
     *  memory-bound on GEMV and reach only ~8% of their 128 GFLOP/s
     *  NEON peak. */
    double effectiveFlops = 10e9;
    double averagePowerW = 8.0;
};

inline WimpySpec
wimpySpec()
{
    return WimpySpec{};
}

} // namespace deepstore::host

#endif // DEEPSTORE_HOST_CALIBRATION_H
