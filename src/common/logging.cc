#include "common/logging.h"

#include <cstdarg>
#include <cstdio>
#include <vector>

namespace deepstore {

namespace {

// lint:sim-state(kernel: process-wide log threshold, set once at startup and read-only while the simulation runs; the parallel kernel freezes it before workers start)
LogLevel gLogLevel = LogLevel::Warn;

} // namespace

void
setLogLevel(LogLevel level)
{
    gLogLevel = level;
}

LogLevel
logLevel()
{
    return gLogLevel;
}

namespace detail {

std::string
vformat(const char *fmt, ...)
{
    std::va_list ap;
    va_start(ap, fmt);
    std::va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    va_end(ap);
    if (n < 0) {
        va_end(ap2);
        return std::string(fmt);
    }
    std::vector<char> buf(static_cast<size_t>(n) + 1);
    std::vsnprintf(buf.data(), buf.size(), fmt, ap2);
    va_end(ap2);
    return std::string(buf.data(), static_cast<size_t>(n));
}

void
emit(const char *prefix, const std::string &msg)
{
    std::fprintf(stderr, "%s%s\n", prefix, msg.c_str());
}

} // namespace detail

} // namespace deepstore
