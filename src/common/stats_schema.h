/**
 * @file
 * The registered stats surface: every counter the simulator exposes,
 * in one place (DESIGN.md §9, rule D11).
 *
 * StatGroup::get() creates counters on demand, which keeps the call
 * sites boilerplate-free but historically meant the full stats
 * surface existed only as the union of string literals scattered
 * through src/. This X-macro list is the single source of truth the
 * D11 lint pass cross-checks against the tree:
 *
 *   - every name passed to StatGroup::get("...") under src/ must
 *     appear here as DS_STAT, and vice versa (stale entries are
 *     findings too);
 *   - every manually printed `os << "name = ..."` stats row must
 *     appear as DS_STAT_ROW — the first-class form of the
 *     guarded-row idiom, whose description documents *when* the row
 *     appears in the dump (guarded rows keep default-config dumps
 *     byte-identical to older pins; the determinism sweeps compare
 *     dump strings).
 *
 * Keep the list sorted within each block. The descriptions are
 * documentation only; nothing at runtime parses them.
 */

#ifndef DEEPSTORE_COMMON_STATS_SCHEMA_H
#define DEEPSTORE_COMMON_STATS_SCHEMA_H

#include <string>
#include <vector>

// clang-format off
#define DEEPSTORE_STATS_SCHEMA(DS_STAT, DS_STAT_ROW)                        \
    /* ---- array coordinator (StatGroup) --------------------------- */    \
    DS_STAT("array.fabric.busyTicks",                                       \
            "ticks the inter-node fabric spent carrying repair/query data") \
    DS_STAT("array.fabric.bytes",                                           \
            "bytes carried over the inter-node fabric")                     \
    DS_STAT("array.fabric.grants",                                          \
            "arbitration grants on the inter-node fabric")                  \
    DS_STAT("array.fabric.waitTicks",                                       \
            "ticks requesters waited for the inter-node fabric")            \
    DS_STAT("array.nodeDeaths", "whole-node death events injected")         \
    DS_STAT("array.powerLosses", "array-wide power-loss events injected")   \
    DS_STAT("array.queriesScattered",                                       \
            "queries fanned out across shard-holding nodes")                \
    DS_STAT("array.redispatches",                                           \
            "sub-queries re-dispatched after a node death")                 \
    DS_STAT("array.shardsLostNoReplica",                                    \
            "shards lost with no surviving replica to re-stripe from")      \
    DS_STAT("array.subQueriesLost",                                         \
            "sub-queries dropped with their node (before redispatch)")      \
    DS_STAT("array.subQueriesRemote",                                       \
            "sub-queries served by a non-home node")                        \
    /* ---- DFV weight stream ---------------------------------------- */   \
    DS_STAT("dfv.backpressureTicks",                                        \
            "ticks the DFV stream stalled waiting on the compute sink")     \
    DS_STAT("dfv.bursts", "DMA bursts issued by the DFV streamer")          \
    DS_STAT("dfv.bytesStreamed", "payload bytes streamed to the DFV")       \
    DS_STAT("dfv.pageRetries",                                              \
            "pages re-read after a correctable stream error")               \
    DS_STAT("dfv.pagesFailed", "pages abandoned as uncorrectable")          \
    DS_STAT("dfv.pagesStreamed", "pages streamed into the DFV")             \
    DS_STAT("dfv.streamsOpened", "weight/probe streams opened")             \
    /* ---- shared DRAM ---------------------------------------------- */   \
    DS_STAT("dram.busyTicks", "ticks the shared DRAM link was busy")        \
    DS_STAT("dram.waitTicks", "ticks requesters waited on the DRAM link")   \
    /* ---- flash controller ----------------------------------------- */   \
    DS_STAT("flash.blockErases", "physical block erases")                   \
    DS_STAT("flash.channelStalls",                                          \
            "requests that waited for a busy flash channel")                \
    DS_STAT("flash.pagePrograms", "physical page programs")                 \
    DS_STAT("flash.pageReads", "physical page reads")                       \
    DS_STAT("flash.readBytes", "bytes read from flash")                     \
    DS_STAT("flash.readRetries", "page reads retried after ECC failure")    \
    DS_STAT("flash.uncorrectableReads",                                     \
            "page reads that exhausted retries (uncorrectable)")            \
    DS_STAT("flash.writeBytes", "bytes programmed to flash")                \
    /* ---- FTL ------------------------------------------------------ */   \
    DS_STAT("ftl.migratedPages",                                            \
            "valid pages migrated during garbage collection")               \
    DS_STAT("ftl.pageWrites", "logical page writes mapped by the FTL")      \
    DS_STAT("ftl.relocatedPages",                                           \
            "pages moved by wear-driven background relocation")             \
    DS_STAT("ftl.relocations", "background relocation passes run")          \
    DS_STAT("ftl.retiredSuperblocks",                                       \
            "superblocks retired at the endurance cap")                     \
    DS_STAT("ftl.superblockErases", "superblock erase cycles")              \
    /* ---- host interface / device-internal traffic ---------------- */    \
    DS_STAT("host.readBytes", "bytes returned to host reads")               \
    DS_STAT("host.readCommands", "host read commands accepted")             \
    DS_STAT("host.trimCommands", "host trim commands accepted")             \
    DS_STAT("host.writeCommands", "host write commands accepted")           \
    DS_STAT("internal.reads",                                               \
            "device-internal page reads (scan datapath, not host I/O)")     \
    DS_STAT("noc.waitTicks", "ticks requesters waited on the on-chip NoC")  \
    DS_STAT("powerLosses", "device power-loss events injected")             \
    DS_STAT("scrub.reads", "pages read by the background scrubber")         \
    /* ---- query scheduler ------------------------------------------ */   \
    DS_STAT("sched.deadlineExceeded",                                       \
            "queries that blew their latency deadline")                     \
    DS_STAT("sched.nodeDeathKills",                                         \
            "in-flight queries killed by a node death")                     \
    DS_STAT("sched.powerLossKills",                                         \
            "in-flight queries killed by a power loss")                     \
    DS_STAT("sched.queriesCancelled", "queries cancelled by the host")      \
    DS_STAT("sched.queriesDegraded",                                        \
            "queries completed with partial shard coverage")                \
    DS_STAT("sched.shardFailures", "shard-level scan failures")             \
    DS_STAT("sched.shardReassignments",                                     \
            "shards reassigned to a surviving replica holder")              \
    DS_STAT("sched.shardsLost", "shards abandoned after failure")           \
    DS_STAT("sched.unitFailures", "compute-unit failures injected")         \
    DS_STAT("sched.watchdogFires", "scheduler watchdog expirations")        \
    /* ---- engine rows (deepstore.cc dumpStats; always printed) ----- */   \
    DS_STAT_ROW("engine.completed", "always printed: queries completed")    \
    DS_STAT_ROW("engine.databases", "always printed: databases loaded")     \
    DS_STAT_ROW("engine.inFlight", "always printed: queries in flight")     \
    DS_STAT_ROW("engine.models", "always printed: models registered")       \
    DS_STAT_ROW("engine.qc.entries",                                        \
                "always printed: query-cache resident entries")             \
    DS_STAT_ROW("engine.qc.hits", "always printed: query-cache hits")       \
    DS_STAT_ROW("engine.qc.misses", "always printed: query-cache misses")   \
    DS_STAT_ROW("engine.queries", "always printed: queries submitted")      \
    DS_STAT_ROW("engine.simulatedSeconds",                                  \
                "always printed: simulated seconds elapsed")                \
    /* ---- array rows (array_coordinator.cc dumpStats) -------------- */   \
    DS_STAT_ROW("array.aliveNodes", "always printed: nodes still alive")    \
    DS_STAT_ROW("array.nodes", "always printed: nodes configured")          \
    DS_STAT_ROW("array.replication",                                        \
                "always printed: configured replication factor")            \
    DS_STAT_ROW("array.repair.bytesOverFabric",                             \
                "printed when repair is enabled or has copied pages")       \
    DS_STAT_ROW("array.repair.lastCompleteTick",                            \
                "printed when repair is enabled or has copied pages")       \
    DS_STAT_ROW("array.repair.pagesCopied",                                 \
                "printed when repair is enabled or has copied pages")       \
    DS_STAT_ROW("array.repair.shardsRepaired",                              \
                "printed when repair is enabled or has copied pages")       \
    DS_STAT_ROW("array.scrub.latentRepaired",                               \
                "printed when scrub is enabled or has scanned pages")       \
    DS_STAT_ROW("array.scrub.pagesScanned",                                 \
                "printed when scrub is enabled or has scanned pages")       \
    DS_STAT_ROW("array.scrub.passes",                                       \
                "printed when scrub is enabled or has scanned pages")       \
    DS_STAT_ROW("array.scrub.uncorrectableFound",                           \
                "printed when scrub is enabled or has scanned pages")       \
    DS_STAT_ROW("array.superblock.tornReplicas",                            \
                "printed only when torn superblock replicas were seen")
// clang-format on

namespace deepstore {

/** Every registered stat name (DS_STAT and DS_STAT_ROW), in schema
 *  order. Tests use this to cross-check the runtime stats surface. */
inline std::vector<std::string>
registeredStatNames()
{
    std::vector<std::string> names;
#define DEEPSTORE_STAT_NAME(name, desc) names.push_back(name);
    DEEPSTORE_STATS_SCHEMA(DEEPSTORE_STAT_NAME, DEEPSTORE_STAT_NAME)
#undef DEEPSTORE_STAT_NAME
    return names;
}

} // namespace deepstore

#endif // DEEPSTORE_COMMON_STATS_SCHEMA_H
