#include "common/fault_injector.h"

#include "common/logging.h"

namespace deepstore {

FaultInjector::FaultInjector(FaultConfig config)
    : config_(std::move(config))
{
    if (config_.uncorrectableReadProbability < 0.0 ||
        config_.uncorrectableReadProbability > 1.0 ||
        config_.planeStallProbability < 0.0 ||
        config_.planeStallProbability > 1.0 ||
        config_.channelStallProbability < 0.0 ||
        config_.channelStallProbability > 1.0)
        fatal("fault probabilities must lie in [0, 1]");
    if (config_.planeStallSeconds < 0.0 ||
        config_.channelStallSeconds < 0.0)
        fatal("fault stall durations must be non-negative");
    if (config_.partialPageCorruptionProbability < 0.0 ||
        config_.partialPageCorruptionProbability > 1.0)
        fatal("fault probabilities must lie in [0, 1]");
    if (config_.partialPageCorruptionProbability > 0.0 &&
        config_.sectorsPerPage == 0)
        fatal("partial-page corruption needs at least one sector");
    for (const auto &b : config_.bursts) {
        if (b.uncorrectableProbability < 0.0 ||
            b.uncorrectableProbability > 1.0)
            fatal("burst probabilities must lie in [0, 1]");
        if (b.untilTick < b.fromTick)
            fatal("burst window must not end before it starts");
    }
    blacklist_.insert(config_.pageBlacklist.begin(),
                      config_.pageBlacklist.end());
    flashFaults_ = config_.anyFlashFaults();
}

double
FaultInjector::hashUniform(std::uint64_t seed, Domain domain,
                           std::uint64_t key, std::uint32_t attempt)
{
    // splitmix64 finalizer over a mixed (seed, domain, key, attempt)
    // word: stateless, so decisions replay identically regardless of
    // the order in which the simulation asks.
    std::uint64_t x = seed;
    x ^= 0x9E3779B97F4A7C15ULL +
         (static_cast<std::uint64_t>(domain) << 56);
    x ^= key * 0xBF58476D1CE4E5B9ULL;
    x ^= (static_cast<std::uint64_t>(attempt) + 1) *
         0x94D049BB133111EBULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    x ^= x >> 31;
    return static_cast<double>(x >> 11) * 0x1.0p-53;
}

bool
FaultInjector::pageUncorrectable(std::uint64_t page_key,
                                 std::uint32_t attempt) const
{
    if (pageBlacklisted(page_key))
        return true;
    if (config_.uncorrectableReadProbability <= 0.0)
        return false;
    return hashUniform(config_.seed, Domain::FlashUncorrectable,
                       page_key, attempt) <
           config_.uncorrectableReadProbability;
}

bool
FaultInjector::burstUncorrectable(std::uint64_t page_key,
                                  std::uint32_t attempt,
                                  std::uint32_t channel,
                                  std::uint32_t chip,
                                  std::uint32_t plane, Tick now) const
{
    if (config_.bursts.empty())
        return false;
    for (std::size_t i = 0; i < config_.bursts.size(); ++i) {
        const BurstDomain &b = config_.bursts[i];
        if (now < b.fromTick || now >= b.untilTick)
            continue;
        if (b.channel != channel)
            continue;
        if (b.chip >= 0 && static_cast<std::uint32_t>(b.chip) != chip)
            continue;
        if (b.plane >= 0 &&
            static_cast<std::uint32_t>(b.plane) != plane)
            continue;
        if (b.uncorrectableProbability >= 1.0)
            return true;
        // Salt the key with the burst's index so overlapping bursts
        // roll independently.
        std::uint64_t salted =
            page_key ^ ((i + 1) * 0x9E3779B97F4A7C15ULL);
        if (hashUniform(config_.seed, Domain::CorrelatedBurst, salted,
                        attempt) < b.uncorrectableProbability)
            return true;
    }
    return false;
}

bool
FaultInjector::sectorCorrupted(std::uint64_t page_key,
                               std::uint32_t sector) const
{
    if (config_.partialPageCorruptionProbability <= 0.0)
        return false;
    // Fold the sector into the key (not the attempt slot): the
    // corruption is a property of the stored cells, so every attempt
    // sees the same verdict.
    std::uint64_t salted =
        page_key ^
        ((static_cast<std::uint64_t>(sector) + 1) *
         0xD6E8FEB86659FD93ULL);
    return hashUniform(config_.seed, Domain::PartialPageCorruption,
                       salted, 0) <
           config_.partialPageCorruptionProbability;
}

bool
FaultInjector::pageHasCorruptedSector(std::uint64_t page_key) const
{
    if (config_.partialPageCorruptionProbability <= 0.0)
        return false;
    for (std::uint32_t s = 0; s < config_.sectorsPerPage; ++s) {
        if (sectorCorrupted(page_key, s))
            return true;
    }
    return false;
}

Tick
FaultInjector::planeStallTicks(std::uint64_t page_key,
                               std::uint32_t attempt) const
{
    if (config_.planeStallProbability <= 0.0 ||
        config_.planeStallSeconds <= 0.0)
        return 0;
    if (hashUniform(config_.seed, Domain::PlaneStall, page_key,
                    attempt) >= config_.planeStallProbability)
        return 0;
    return secondsToTicks(config_.planeStallSeconds);
}

Tick
FaultInjector::channelStallTicks(std::uint64_t page_key,
                                 std::uint32_t attempt) const
{
    if (config_.channelStallProbability <= 0.0 ||
        config_.channelStallSeconds <= 0.0)
        return 0;
    if (hashUniform(config_.seed, Domain::ChannelStall, page_key,
                    attempt) >= config_.channelStallProbability)
        return 0;
    return secondsToTicks(config_.channelStallSeconds);
}

std::optional<Tick>
FaultInjector::unitFailureTick(std::uint32_t level_id,
                               std::uint32_t unit_index) const
{
    for (const auto &f : config_.unitFailures) {
        if (f.levelId == level_id && f.unitIndex == unit_index)
            return f.atTick;
    }
    return std::nullopt;
}

} // namespace deepstore
