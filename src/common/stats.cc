#include "common/stats.h"

namespace deepstore {

void
StatGroup::resetAll()
{
    for (auto &[name, stat] : stats_)
        stat.reset();
}

void
StatGroup::dump(std::ostream &os) const
{
    for (const auto &[stat_name, stat] : stats_) {
        os << (name_.empty() ? stat_name : name_ + "." + stat_name)
           << " = " << stat.value() << "\n";
    }
}

} // namespace deepstore
