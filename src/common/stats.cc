#include "common/stats.h"

// Compile-checks the registered-stats schema (DESIGN.md §9, D11)
// even for builds that never instantiate registeredStatNames().
#include "common/stats_schema.h"

namespace deepstore {

void
StatGroup::resetAll()
{
    for (auto &[name, stat] : stats_)
        stat.reset();
}

void
StatGroup::dump(std::ostream &os) const
{
    for (const auto &[stat_name, stat] : stats_) {
        os << (name_.empty() ? stat_name : name_ + "." + stat_name)
           << " = " << stat.value() << "\n";
    }
}

} // namespace deepstore
