#include "common/rng.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace deepstore {

namespace {

std::uint64_t
splitmix64(std::uint64_t &x)
{
    x += 0x9E3779B97F4A7C15ULL;
    std::uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
    return z ^ (z >> 31);
}

std::uint64_t
rotl(std::uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(std::uint64_t seed)
{
    std::uint64_t x = seed;
    for (auto &s : s_)
        s = splitmix64(x);
}

std::uint64_t
Rng::next()
{
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

double
Rng::uniform()
{
    // 53 random mantissa bits -> [0, 1).
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

double
Rng::uniform(double lo, double hi)
{
    return lo + (hi - lo) * uniform();
}

std::uint64_t
Rng::uniformInt(std::uint64_t n)
{
    DS_ASSERT(n > 0);
    // Rejection-free multiply-shift; bias is negligible for n << 2^64.
    return static_cast<std::uint64_t>(uniform() * static_cast<double>(n));
}

double
Rng::gaussian()
{
    if (haveSpareGaussian_) {
        haveSpareGaussian_ = false;
        return spareGaussian_;
    }
    double u1 = 0.0;
    do {
        u1 = uniform();
    } while (u1 <= 0.0);
    double u2 = uniform();
    double r = std::sqrt(-2.0 * std::log(u1));
    double theta = 2.0 * M_PI * u2;
    spareGaussian_ = r * std::sin(theta);
    haveSpareGaussian_ = true;
    return r * std::cos(theta);
}

double
Rng::gaussian(double mean, double stddev)
{
    return mean + stddev * gaussian();
}

bool
Rng::bernoulli(double p)
{
    return uniform() < p;
}

ZipfSampler::ZipfSampler(std::uint64_t n, double alpha)
    : n_(n), alpha_(alpha)
{
    DS_ASSERT(n > 0);
    cdf_.resize(n);
    double sum = 0.0;
    for (std::uint64_t i = 0; i < n; ++i) {
        sum += 1.0 / std::pow(static_cast<double>(i + 1), alpha);
        cdf_[i] = sum;
    }
    for (auto &c : cdf_)
        c /= sum;
}

std::uint64_t
ZipfSampler::sample(Rng &rng) const
{
    double u = rng.uniform();
    auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
    if (it == cdf_.end())
        return n_ - 1;
    return static_cast<std::uint64_t>(it - cdf_.begin());
}

} // namespace deepstore
