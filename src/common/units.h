/**
 * @file
 * Units, constants, and strong-ish typedefs used across the DeepStore
 * simulator suite.
 *
 * Conventions:
 *  - time is held in double seconds for analytical models and in
 *    uint64_t picoseconds (Tick) inside the discrete-event kernel;
 *  - sizes are held in uint64_t bytes;
 *  - bandwidths are bytes/second (double);
 *  - energies are Joules (double), powers are Watts (double).
 */

#ifndef DEEPSTORE_COMMON_UNITS_H
#define DEEPSTORE_COMMON_UNITS_H

#include <cstdint>

namespace deepstore {

/** Simulator time base: one tick is one picosecond. */
using Tick = std::uint64_t;

/** Cycle count on some clock domain. */
using Cycles = std::uint64_t;

constexpr Tick kTicksPerSecond = 1'000'000'000'000ULL;

/** Convert seconds to ticks (picoseconds). */
constexpr Tick
secondsToTicks(double s)
{
    return static_cast<Tick>(s * static_cast<double>(kTicksPerSecond));
}

/** Convert ticks (picoseconds) to seconds. */
constexpr double
ticksToSeconds(Tick t)
{
    return static_cast<double>(t) / static_cast<double>(kTicksPerSecond);
}

// Binary sizes.
constexpr std::uint64_t KiB = 1024ULL;
constexpr std::uint64_t MiB = 1024ULL * KiB;
constexpr std::uint64_t GiB = 1024ULL * MiB;

// Decimal rates (storage vendors use decimal units for bandwidth).
constexpr double KB = 1e3;
constexpr double MB = 1e6;
constexpr double GB = 1e9;

constexpr double KHz = 1e3;
constexpr double MHz = 1e6;
constexpr double GHz = 1e9;

constexpr double kMicro = 1e-6;
constexpr double kNano = 1e-9;
constexpr double kPico = 1e-12;

/** Bytes per IEEE-754 single-precision float (the paper's precision). */
constexpr std::uint64_t kBytesPerFloat = 4;

} // namespace deepstore

#endif // DEEPSTORE_COMMON_UNITS_H
