/**
 * @file
 * Deterministic random-number generation for the simulator suite.
 *
 * A self-contained xoshiro256** generator keeps runs reproducible across
 * standard libraries (std::mt19937 streams are portable, but the
 * std::*_distribution adapters are not). All distribution sampling is
 * implemented here so a given seed produces identical workloads
 * everywhere.
 */

#ifndef DEEPSTORE_COMMON_RNG_H
#define DEEPSTORE_COMMON_RNG_H

#include <cstdint>
#include <vector>

namespace deepstore {

/** xoshiro256** PRNG with explicit, portable distribution sampling. */
class Rng
{
  public:
    /** Seed via splitmix64 expansion of a single 64-bit seed. */
    explicit Rng(std::uint64_t seed = 0x9E3779B97F4A7C15ULL);

    /** Next raw 64-bit value. */
    std::uint64_t next();

    /** Uniform double in [0, 1). */
    double uniform();

    /** Uniform double in [lo, hi). */
    double uniform(double lo, double hi);

    /** Uniform integer in [0, n). @pre n > 0. */
    std::uint64_t uniformInt(std::uint64_t n);

    /** Standard normal via Box-Muller. */
    double gaussian();

    /** Normal with the given mean and standard deviation. */
    double gaussian(double mean, double stddev);

    /** Bernoulli trial with probability p of returning true. */
    bool bernoulli(double p);

  private:
    std::uint64_t s_[4];
    bool haveSpareGaussian_ = false;
    double spareGaussian_ = 0.0;
};

/**
 * Zipfian sampler over [0, n) with exponent alpha, using the inverse-CDF
 * table method (O(log n) per sample after O(n) setup). alpha = 0
 * degenerates to uniform.
 */
class ZipfSampler
{
  public:
    ZipfSampler(std::uint64_t n, double alpha);

    /** Draw one rank in [0, n); rank 0 is the most popular item. */
    std::uint64_t sample(Rng &rng) const;

    std::uint64_t size() const { return n_; }
    double alpha() const { return alpha_; }

  private:
    std::uint64_t n_;
    double alpha_;
    std::vector<double> cdf_;
};

} // namespace deepstore

#endif // DEEPSTORE_COMMON_RNG_H
