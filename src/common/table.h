/**
 * @file
 * Plain-text table printer used by the benchmark harnesses to emit the
 * rows/series the paper's tables and figures report.
 */

#ifndef DEEPSTORE_COMMON_TABLE_H
#define DEEPSTORE_COMMON_TABLE_H

#include <ostream>
#include <string>
#include <vector>

namespace deepstore {

/** Column-aligned table with a header row and string cells. */
class TextTable
{
  public:
    /** Create a table with the given column headers. */
    explicit TextTable(std::vector<std::string> headers);

    /** Append one row; must have exactly as many cells as headers. */
    void addRow(std::vector<std::string> cells);

    /** Format a double with the given precision (helper for cells). */
    static std::string num(double v, int precision = 2);

    /** Render the table with aligned columns and a separator rule. */
    void print(std::ostream &os) const;

    std::size_t rows() const { return rows_.size(); }
    std::size_t columns() const { return headers_.size(); }

    /** Column headers (for machine-readable re-emission). */
    const std::vector<std::string> &headers() const
    {
        return headers_;
    }

    /** Row cells, in insertion order. */
    const std::vector<std::vector<std::string>> &data() const
    {
        return rows_;
    }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace deepstore

#endif // DEEPSTORE_COMMON_TABLE_H
