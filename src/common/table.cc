#include "common/table.h"

#include <algorithm>
#include <cstdio>
#include <iomanip>

#include "common/logging.h"

namespace deepstore {

TextTable::TextTable(std::vector<std::string> headers)
    : headers_(std::move(headers))
{
    DS_ASSERT(!headers_.empty());
}

void
TextTable::addRow(std::vector<std::string> cells)
{
    if (cells.size() != headers_.size()) {
        panic("table row has %zu cells, expected %zu",
              cells.size(), headers_.size());
    }
    rows_.push_back(std::move(cells));
}

std::string
TextTable::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return std::string(buf);
}

void
TextTable::print(std::ostream &os) const
{
    std::vector<std::size_t> widths(headers_.size());
    for (std::size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_) {
        for (std::size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());
    }

    auto print_row = [&](const std::vector<std::string> &row) {
        for (std::size_t c = 0; c < row.size(); ++c) {
            os << std::left << std::setw(static_cast<int>(widths[c]))
               << row[c];
            os << (c + 1 == row.size() ? "\n" : "  ");
        }
    };

    print_row(headers_);
    std::size_t total = 0;
    for (auto w : widths)
        total += w + 2;
    os << std::string(total > 2 ? total - 2 : total, '-') << "\n";
    for (const auto &row : rows_)
        print_row(row);
}

} // namespace deepstore
