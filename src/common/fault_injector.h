/**
 * @file
 * Deterministic fault-injection subsystem for the DeepStore
 * simulation.
 *
 * Real computational-storage stacks must survive uncorrectable reads,
 * slow or failed dies, and overloaded accelerators. This module makes
 * those failure classes a first-class, *reproducible* dimension of
 * the simulation: every fault decision is a pure function of
 * (seed, domain, entity key, attempt), evaluated by hashing — no
 * mutable RNG state, no draw-order dependence. Two runs with the same
 * seed and schedule observe bit-identical faults regardless of event
 * interleaving, and a retried operation re-rolls deterministically by
 * incrementing its attempt counter.
 *
 * Fault domains:
 *  - FlashUncorrectable: a page read fails ECC even after the full
 *    read-retry ladder (per-page probability plus an explicit page
 *    blacklist for targeted schedules).
 *  - PlaneStall: a transient per-plane stall (die busy with internal
 *    housekeeping) delaying the array read.
 *  - ChannelStall: a transient channel-bus stall delaying the data
 *    transfer.
 *  - AcceleratorUnit: a whole accelerator instance fails at a
 *    scheduled tick (per (level, unit) entries).
 *
 * The injector lives in common/ and is keyed by opaque 64-bit entity
 * keys so it has no dependency on the SSD or core layers; callers
 * encode their addresses (see ssd::faultKey for flash pages).
 * A default-constructed config injects nothing and costs one branch
 * per query site, keeping the fault-free datapath tick-identical to a
 * build without this subsystem.
 */

#ifndef DEEPSTORE_COMMON_FAULT_INJECTOR_H
#define DEEPSTORE_COMMON_FAULT_INJECTOR_H

#include <cstdint>
#include <optional>
#include <unordered_set>
#include <vector>

#include "common/units.h"

namespace deepstore {

/**
 * A correlated failure burst: every page read inside the named
 * die/plane scope fails ECC (with the given probability) while the
 * tick window is open. Models the spatially and temporally correlated
 * error clusters real NAND exhibits — a marginal wordline driver, a
 * plane-wide program disturb — as opposed to the independent per-page
 * draws of `uncorrectableReadProbability`.
 */
struct BurstDomain
{
    /** Channel the burst lives on. */
    std::uint32_t channel = 0;
    /** Chip within the channel; -1 = every chip on the channel. */
    std::int32_t chip = -1;
    /** Plane within the chip; -1 = every plane on the chip. */
    std::int32_t plane = -1;
    /** Half-open tick window [fromTick, untilTick) of the burst. */
    Tick fromTick = 0;
    Tick untilTick = 0;
    /** Per-attempt uncorrectable probability inside the scope
     *  (1.0 = hard burst: every read in the window fails). */
    double uncorrectableProbability = 1.0;
};

/** Scheduled failure of one accelerator unit. */
struct UnitFailure
{
    /** Placement level id (matches core::Level's underlying value:
     *  0 = SSD, 1 = channel, 2 = chip). */
    std::uint32_t levelId = 0;
    /** Unit index within the level's accelerator pool. */
    std::uint32_t unitIndex = 0;
    /** Tick at which the unit stops responding. */
    Tick atTick = 0;
};

/** Declarative fault schedule (see file comment for the domains). */
struct FaultConfig
{
    /** Root seed of every hash-derived decision. */
    std::uint64_t seed = 1;

    /** Per-page probability that a read is uncorrectable on a given
     *  attempt (independent re-roll per attempt; 0 disables). */
    double uncorrectableReadProbability = 0.0;

    /** Pages (by fault key) that fail ECC on *every* attempt —
     *  targeted schedules for tests and benches. */
    std::vector<std::uint64_t> pageBlacklist;

    /** Per-read probability of a transient plane stall before the
     *  array read, and its duration. */
    double planeStallProbability = 0.0;
    double planeStallSeconds = 0.0;

    /** Per-read probability of a transient channel-bus stall before
     *  the data transfer, and its duration. */
    double channelStallProbability = 0.0;
    double channelStallSeconds = 0.0;

    /** Accelerator units that die at a scheduled tick. */
    std::vector<UnitFailure> unitFailures;

    /** Correlated die/plane error bursts (windowed, scoped). */
    std::vector<BurstDomain> bursts;

    /** Per-sector probability of latent partial-page corruption: a
     *  data-dependent hash over (seed, page key, sector) marks
     *  individual sectors bad *persistently* — retries re-read the
     *  same damaged cells, so unlike the per-attempt domains the draw
     *  ignores the attempt counter. A page whose sectors are all
     *  clean reads normally; any corrupt sector makes the page
     *  uncorrectable until it is rewritten elsewhere (new ppn, new
     *  draw). 0 disables. */
    double partialPageCorruptionProbability = 0.0;

    /** Sectors per flash page for the partial-page corruption draw
     *  (independent roll per sector). */
    std::uint32_t sectorsPerPage = 8;

    /** Whole-device power loss at this tick (0 disables): all
     *  in-flight work dies, volatile state drops, and the engine
     *  replays recovery from persisted metadata. */
    Tick powerLossAtTick = 0;

    /** Any flash-domain fault possible under this schedule? */
    bool
    anyFlashFaults() const
    {
        return uncorrectableReadProbability > 0.0 ||
               !pageBlacklist.empty() || planeStallProbability > 0.0 ||
               channelStallProbability > 0.0 || !bursts.empty() ||
               partialPageCorruptionProbability > 0.0;
    }

    /** True when the schedule injects nothing at all. */
    bool
    empty() const
    {
        return !anyFlashFaults() && unitFailures.empty() &&
               powerLossAtTick == 0;
    }
};

/**
 * Pure-function fault oracle over a FaultConfig (see file comment).
 * Copyable and cheap; every FlashController owns one and the query
 * scheduler consults one — all copies built from the same config
 * agree on every decision by construction.
 */
class FaultInjector
{
  public:
    /** Decision domains (salt the hash so domains are independent). */
    enum class Domain : std::uint32_t
    {
        FlashUncorrectable = 1,
        PlaneStall = 2,
        ChannelStall = 3,
        AcceleratorUnit = 4,
        CorrelatedBurst = 5,
        WearInduced = 6,
        PartialPageCorruption = 7,
    };

    FaultInjector() = default;
    explicit FaultInjector(FaultConfig config);

    const FaultConfig &config() const { return config_; }

    bool flashFaultsEnabled() const { return flashFaults_; }
    bool enabled() const { return !config_.empty(); }

    /** Is this page on the always-fail blacklist? */
    bool pageBlacklisted(std::uint64_t page_key) const
    {
        return !blacklist_.empty() &&
               blacklist_.count(page_key) != 0;
    }

    /** Does the read of `page_key` on `attempt` fail ECC even after
     *  the retry ladder? (Blacklisted pages always do.) */
    bool pageUncorrectable(std::uint64_t page_key,
                           std::uint32_t attempt) const;

    /**
     * Is this read caught in an open correlated burst? `now` selects
     * the active windows; (channel, chip, plane) select the scoped
     * domains. Each matching burst rolls independently (hash salted
     * by the burst's index), so overlapping bursts compose.
     */
    bool burstUncorrectable(std::uint64_t page_key,
                            std::uint32_t attempt,
                            std::uint32_t channel, std::uint32_t chip,
                            std::uint32_t plane, Tick now) const;

    /**
     * Roll a wear-induced uncorrectable for this read against a
     * caller-supplied RBER (the FTL's lifecycle model computes it;
     * the injector only owns the deterministic draw). Salted with its
     * own domain so wear draws are independent of the flat schedule.
     */
    bool
    wearUncorrectable(std::uint64_t page_key, std::uint32_t attempt,
                      double rber) const
    {
        if (rber <= 0.0)
            return false;
        if (rber >= 1.0)
            return true;
        return hashUniform(config_.seed, Domain::WearInduced,
                           page_key, attempt) < rber;
    }

    bool anyBursts() const { return !config_.bursts.empty(); }

    /**
     * Is `sector` of the page at `page_key` latently corrupted?
     * Attempt-independent by design: the damage lives in the cells,
     * so the retry ladder re-reads the same bad data. Moving the
     * logical page to a fresh ppn changes the key and re-rolls.
     */
    bool sectorCorrupted(std::uint64_t page_key,
                         std::uint32_t sector) const;

    /** Does any sector of this page carry latent corruption? */
    bool pageHasCorruptedSector(std::uint64_t page_key) const;

    /** Transient plane-stall delay for this read (0 when none). */
    Tick planeStallTicks(std::uint64_t page_key,
                         std::uint32_t attempt) const;

    /** Transient channel-stall delay for this read (0 when none). */
    Tick channelStallTicks(std::uint64_t page_key,
                           std::uint32_t attempt) const;

    /** Scheduled death tick of an accelerator unit, if any. */
    std::optional<Tick>
    unitFailureTick(std::uint32_t level_id,
                    std::uint32_t unit_index) const;

    /**
     * The deterministic core: uniform [0,1) from
     * (seed, domain, key, attempt). Exposed for tests that pin the
     * schedule-replay property.
     */
    static double hashUniform(std::uint64_t seed, Domain domain,
                              std::uint64_t key,
                              std::uint32_t attempt);

  private:
    FaultConfig config_;
    std::unordered_set<std::uint64_t> blacklist_;
    bool flashFaults_ = false;
};

} // namespace deepstore

#endif // DEEPSTORE_COMMON_FAULT_INJECTOR_H
