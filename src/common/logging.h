/**
 * @file
 * gem5-style status and error reporting for the DeepStore simulators.
 *
 * Severity model (mirrors gem5's base/logging.hh):
 *  - inform(): normal operating status, no connotation of error;
 *  - warn():   something is approximated or suspicious but survivable;
 *  - fatal():  the simulation cannot continue because of a *user* error
 *              (bad configuration, invalid arguments); throws FatalError
 *              so tests can assert on misuse;
 *  - panic():  an internal invariant was violated (a simulator bug);
 *              throws PanicError.
 *
 * Throwing (instead of exit/abort) keeps the library embeddable and lets
 * the test suite exercise failure paths.
 */

#ifndef DEEPSTORE_COMMON_LOGGING_H
#define DEEPSTORE_COMMON_LOGGING_H

#include <cstdio>
#include <stdexcept>
#include <string>

namespace deepstore {

/** Raised by fatal(): a user/configuration error. */
class FatalError : public std::runtime_error
{
  public:
    explicit FatalError(const std::string &msg)
        : std::runtime_error(msg) {}
};

/** Raised by panic(): an internal simulator invariant violation. */
class PanicError : public std::logic_error
{
  public:
    explicit PanicError(const std::string &msg)
        : std::logic_error(msg) {}
};

/** Global verbosity for inform()/warn(). */
enum class LogLevel { Quiet, Warn, Info };

/** Set the global log level. Default is Warn. */
void setLogLevel(LogLevel level);

/** Get the current global log level. */
LogLevel logLevel();

namespace detail {

std::string vformat(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

void emit(const char *prefix, const std::string &msg);

} // namespace detail

/** Print an informational message when the log level allows it. */
template <typename... Args>
void
inform(const char *fmt, Args... args)
{
    if (logLevel() >= LogLevel::Info)
        detail::emit("info: ", detail::vformat(fmt, args...));
}

/** Print a warning when the log level allows it. */
template <typename... Args>
void
warn(const char *fmt, Args... args)
{
    if (logLevel() >= LogLevel::Warn)
        detail::emit("warn: ", detail::vformat(fmt, args...));
}

/** Report an unrecoverable user error; always throws FatalError. */
template <typename... Args>
[[noreturn]] void
fatal(const char *fmt, Args... args)
{
    std::string msg = detail::vformat(fmt, args...);
    detail::emit("fatal: ", msg);
    throw FatalError(msg);
}

/** Report a violated internal invariant; always throws PanicError. */
template <typename... Args>
[[noreturn]] void
panic(const char *fmt, Args... args)
{
    std::string msg = detail::vformat(fmt, args...);
    detail::emit("panic: ", msg);
    throw PanicError(msg);
}

/** panic() unless the given condition holds. */
#define DS_ASSERT(cond)                                                 \
    do {                                                                \
        if (!(cond))                                                    \
            ::deepstore::panic("assertion failed: %s", #cond);          \
    } while (0)

} // namespace deepstore

#endif // DEEPSTORE_COMMON_LOGGING_H
