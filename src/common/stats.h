/**
 * @file
 * A minimal statistics package in the spirit of gem5's Stats: named
 * scalar counters and distributions owned by a StatGroup, dumpable as
 * text. Models register counters here; benches and tests read them.
 */

#ifndef DEEPSTORE_COMMON_STATS_H
#define DEEPSTORE_COMMON_STATS_H

#include <cstdint>
#include <map>
#include <ostream>
#include <string>

namespace deepstore {

/** A named scalar statistic (double-valued accumulator). */
class Stat
{
  public:
    Stat() = default;

    void operator+=(double v) { value_ += v; ++samples_; }
    void set(double v) { value_ = v; samples_ = 1; }
    void reset() { value_ = 0.0; samples_ = 0; }

    double value() const { return value_; }
    std::uint64_t samples() const { return samples_; }
    double mean() const
    {
        return samples_ ? value_ / static_cast<double>(samples_) : 0.0;
    }

  private:
    double value_ = 0.0;
    std::uint64_t samples_ = 0;
};

/**
 * A group of named statistics. Lookup creates on demand so models can
 * write `stats().get("flash.pageReads") += 1` without registration
 * boilerplate.
 */
class StatGroup
{
  public:
    explicit StatGroup(std::string name = "") : name_(std::move(name)) {}

    /** Get (creating if absent) the statistic with the given name. */
    Stat &get(const std::string &stat_name) { return stats_[stat_name]; }

    /** Const lookup; returns nullptr when the stat does not exist. */
    const Stat *find(const std::string &stat_name) const
    {
        auto it = stats_.find(stat_name);
        return it == stats_.end() ? nullptr : &it->second;
    }

    /** Reset every statistic in the group. */
    void resetAll();

    /** Dump "name.stat = value" lines, sorted by name. */
    void dump(std::ostream &os) const;

    const std::string &name() const { return name_; }
    std::size_t size() const { return stats_.size(); }

  private:
    std::string name_;
    std::map<std::string, Stat> stats_;
};

} // namespace deepstore

#endif // DEEPSTORE_COMMON_STATS_H
