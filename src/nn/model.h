/**
 * @file
 * Similarity-comparison network (SCN) model graphs.
 *
 * An SCN takes a query feature vector (QFV) and a database feature
 * vector (DFV), combines them, pushes the result through a pipeline of
 * layers, and emits a similarity score (paper Fig. 1c). A Query
 * Comparison Network (QCN, §4.6) has the same structure, so this class
 * represents both.
 *
 * Pair combination follows the two-branch architectures the paper's
 * applications use: either the two features are concatenated, or an
 * element-wise layer (subtract / multiply / dot) fuses them as the
 * first pipeline stage. Table 1's "element-wise layer" counts include
 * that fusing layer.
 */

#ifndef DEEPSTORE_NN_MODEL_H
#define DEEPSTORE_NN_MODEL_H

#include <cstdint>
#include <string>
#include <vector>

#include "common/units.h"
#include "nn/layer.h"

namespace deepstore::nn {

/** An SCN/QCN: feature dimension, combine mode, and a layer pipeline. */
class Model
{
  public:
    Model() = default;

    /**
     * @param name model name (used in traces and serialization)
     * @param feature_dim per-branch feature vector length (floats)
     * @param concat_inputs when true and the first layer is not
     *        element-wise, the pipeline input is concat(QFV, DFV)
     *        of length 2*feature_dim; otherwise the first layer must
     *        be an element-wise combiner over feature_dim elements.
     */
    Model(std::string name, std::int64_t feature_dim, bool concat_inputs);

    /** Append a layer; chain consistency is checked in validate(). */
    void addLayer(Layer layer);

    const std::string &name() const { return modelName_; }
    std::int64_t featureDim() const { return featureDim_; }
    bool concatInputs() const { return concatInputs_; }
    const std::vector<Layer> &layers() const { return layers_; }
    std::size_t numLayers() const { return layers_.size(); }

    /** Feature vector size in bytes (FP32, per Table 1). */
    std::uint64_t featureBytes() const
    {
        return static_cast<std::uint64_t>(featureDim_) * kBytesPerFloat;
    }

    /** Scalar count entering layer i (after any flatten/concat). */
    std::int64_t layerInputDim(std::size_t i) const;

    /** Scalar count leaving the last layer. */
    std::int64_t outputDim() const;

    std::int64_t totalMacs() const;
    std::int64_t totalFlops() const;
    std::int64_t totalWeightCount() const;
    std::uint64_t totalWeightBytes() const
    {
        return static_cast<std::uint64_t>(totalWeightCount()) *
               kBytesPerFloat;
    }

    /** Number of layers of the given kind (Table 1 columns). */
    std::size_t countLayers(LayerKind kind) const;

    /**
     * Check the layer chain: positive dims, element-wise layers only as
     * the pair combiner (position 0), and each layer's input count
     * matching its predecessor's output count. fatal() on violation.
     */
    void validate() const;

  private:
    std::string modelName_;
    std::int64_t featureDim_ = 0;
    bool concatInputs_ = false;
    std::vector<Layer> layers_;
};

} // namespace deepstore::nn

#endif // DEEPSTORE_NN_MODEL_H
