/**
 * @file
 * Weight storage for SCN/QCN models.
 *
 * Weights exist so the functional executor can produce real similarity
 * scores in tests and examples; the timing and energy models only use
 * the weight *sizes*. Deterministic initialization from a seed stands
 * in for training (see DESIGN.md, substitutions).
 */

#ifndef DEEPSTORE_NN_WEIGHTS_H
#define DEEPSTORE_NN_WEIGHTS_H

#include <cstdint>
#include <vector>

#include "nn/model.h"
#include "nn/tensor.h"

namespace deepstore::nn {

/** Per-layer weight tensors for a Model. */
class ModelWeights
{
  public:
    ModelWeights() = default;

    /**
     * Xavier-style deterministic initialization: every parameter is
     * drawn uniform in [-s, s] with s = sqrt(6 / (fan_in + fan_out)).
     */
    static ModelWeights random(const Model &model, std::uint64_t seed);

    /** Kernel/weight tensor for layer i (empty for element-wise). */
    const Tensor &kernel(std::size_t i) const { return kernels_[i]; }
    Tensor &kernel(std::size_t i) { return kernels_[i]; }

    /** Bias tensor for layer i (may be empty). */
    const Tensor &bias(std::size_t i) const { return biases_[i]; }
    Tensor &bias(std::size_t i) { return biases_[i]; }

    std::size_t numLayers() const { return kernels_.size(); }

    /** Total parameter count across all layers. */
    std::int64_t parameterCount() const;

    /** Append raw per-layer tensors (used by the deserializer). */
    void append(Tensor kernel, Tensor bias);

  private:
    std::vector<Tensor> kernels_;
    std::vector<Tensor> biases_;
};

} // namespace deepstore::nn

#endif // DEEPSTORE_NN_WEIGHTS_H
