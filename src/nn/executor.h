/**
 * @file
 * Reference (functional) executor for SCN/QCN models.
 *
 * This is the ground-truth math: examples use it to produce real
 * similarity scores, the test suite uses it to cross-check the layer
 * shape arithmetic, and the Query Cache uses it for QCN scoring. It is
 * a straightforward scalar implementation — the architecture paper's
 * performance claims come from the timing models, not from this code.
 */

#ifndef DEEPSTORE_NN_EXECUTOR_H
#define DEEPSTORE_NN_EXECUTOR_H

#include <vector>

#include "nn/model.h"
#include "nn/weights.h"

namespace deepstore::nn {

/** Evaluates a Model functionally on (QFV, DFV) pairs. */
class Executor
{
  public:
    /** Bind an executor to a validated model and matching weights. */
    Executor(const Model &model, const ModelWeights &weights);

    /**
     * Run the full pipeline on one (query, database) feature pair.
     * @return the raw output vector of the last layer.
     */
    std::vector<float> run(const std::vector<float> &qfv,
                           const std::vector<float> &dfv) const;

    /**
     * Similarity score in [0, 1]: sigmoid of a 1-d output, softmax
     * "match" probability (index 1) of a 2-d output, and sigmoid of
     * the mean otherwise.
     */
    float score(const std::vector<float> &qfv,
                const std::vector<float> &dfv) const;

    /** Collapse a raw output vector to a score as described above. */
    static float scoreFromOutput(const std::vector<float> &out);

    const Model &model() const { return model_; }

  private:
    std::vector<float> runLayer(std::size_t idx,
                                const std::vector<float> &in,
                                const std::vector<float> &aux) const;

    const Model &model_;
    const ModelWeights &weights_;
};

} // namespace deepstore::nn

#endif // DEEPSTORE_NN_EXECUTOR_H
