/**
 * @file
 * Hand-crafted "semantic" weights.
 *
 * The paper's applications use trained networks; we cannot train
 * (DESIGN.md, substitutions), but for runnable examples we still want
 * the real SCN topologies to produce *meaningful* similarity scores.
 * This helper constructs weights analytically so the network output
 * is a monotone function of feature similarity:
 *
 *  - multiply-fused models (TIR, TextQA): the element-wise product
 *    q (*) d is averaged through the FC stack, so correlated features
 *    score high;
 *  - subtract-fused models (ReId): ReLU keeps the positive part of
 *    the difference, whose mean grows with distance; the output head
 *    negates it, so nearby features score high;
 *  - concatenation models (MIR, ESTP): the first FC computes
 *    ReLU(q - d) projections (a +1/-1 weight pair per dimension),
 *    reducing to the subtract case.
 *
 * The test suite verifies top-K retrieval against ground-truth topics
 * for all five application topologies.
 */

#ifndef DEEPSTORE_NN_SEMANTIC_H
#define DEEPSTORE_NN_SEMANTIC_H

#include "nn/model.h"
#include "nn/weights.h"

namespace deepstore::nn {

/**
 * Build weights for `model` such that Executor::score(q, d) is a
 * monotone proxy of the similarity between q and d.
 * fatal() if the topology is not one of the supported SCN families
 * (element-wise fuse or concat, followed by Conv2D/FC layers).
 */
ModelWeights semanticWeights(const Model &model);

} // namespace deepstore::nn

#endif // DEEPSTORE_NN_SEMANTIC_H
