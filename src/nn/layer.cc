#include "nn/layer.h"

#include "common/logging.h"

namespace deepstore::nn {

const char *
toString(LayerKind kind)
{
    switch (kind) {
      case LayerKind::FullyConnected: return "FC";
      case LayerKind::Conv2D: return "Conv2D";
      case LayerKind::ElementWise: return "ElementWise";
    }
    return "?";
}

const char *
toString(EwOp op)
{
    switch (op) {
      case EwOp::Add: return "add";
      case EwOp::Subtract: return "sub";
      case EwOp::Multiply: return "mul";
      case EwOp::DotProduct: return "dot";
    }
    return "?";
}

const char *
toString(Activation act)
{
    switch (act) {
      case Activation::None: return "none";
      case Activation::ReLU: return "relu";
      case Activation::Sigmoid: return "sigmoid";
    }
    return "?";
}

Layer
Layer::fc(std::string name, std::int64_t in, std::int64_t out,
          Activation act, bool bias)
{
    Layer l;
    l.name = std::move(name);
    l.kind = LayerKind::FullyConnected;
    l.activation = act;
    l.fcIn = in;
    l.fcOut = out;
    l.fcBias = bias;
    l.validate();
    return l;
}

Layer
Layer::conv2d(std::string name, std::int64_t in_h, std::int64_t in_w,
              std::int64_t in_c, std::int64_t k_h, std::int64_t k_w,
              std::int64_t out_c, std::int64_t stride, std::int64_t pad,
              Activation act)
{
    Layer l;
    l.name = std::move(name);
    l.kind = LayerKind::Conv2D;
    l.activation = act;
    l.inH = in_h;
    l.inW = in_w;
    l.inC = in_c;
    l.kH = k_h;
    l.kW = k_w;
    l.outC = out_c;
    l.stride = stride;
    l.pad = pad;
    l.validate();
    return l;
}

Layer
Layer::elementWise(std::string name, EwOp op, std::int64_t size)
{
    Layer l;
    l.name = std::move(name);
    l.kind = LayerKind::ElementWise;
    l.activation = Activation::None;
    l.ewOp = op;
    l.ewSize = size;
    l.validate();
    return l;
}

std::int64_t
Layer::outH() const
{
    DS_ASSERT(kind == LayerKind::Conv2D);
    return (inH + 2 * pad - kH) / stride + 1;
}

std::int64_t
Layer::outW() const
{
    DS_ASSERT(kind == LayerKind::Conv2D);
    return (inW + 2 * pad - kW) / stride + 1;
}

std::int64_t
Layer::inputCount() const
{
    switch (kind) {
      case LayerKind::FullyConnected:
        return fcIn;
      case LayerKind::Conv2D:
        return inH * inW * inC;
      case LayerKind::ElementWise:
        // Both operands; DotProduct and binary ops take two vectors.
        return 2 * ewSize;
    }
    return 0;
}

std::int64_t
Layer::outputCount() const
{
    switch (kind) {
      case LayerKind::FullyConnected:
        return fcOut;
      case LayerKind::Conv2D:
        return outH() * outW() * outC;
      case LayerKind::ElementWise:
        return ewOp == EwOp::DotProduct ? 1 : ewSize;
    }
    return 0;
}

std::int64_t
Layer::weightCount() const
{
    switch (kind) {
      case LayerKind::FullyConnected:
        return fcIn * fcOut + (fcBias ? fcOut : 0);
      case LayerKind::Conv2D:
        return kH * kW * inC * outC + outC; // kernel + per-channel bias
      case LayerKind::ElementWise:
        return 0;
    }
    return 0;
}

std::int64_t
Layer::macs() const
{
    switch (kind) {
      case LayerKind::FullyConnected:
        return fcIn * fcOut;
      case LayerKind::Conv2D:
        return outH() * outW() * outC * kH * kW * inC;
      case LayerKind::ElementWise:
        return ewOp == EwOp::DotProduct ? ewSize : 0;
    }
    return 0;
}

std::int64_t
Layer::flops() const
{
    if (kind == LayerKind::ElementWise && ewOp != EwOp::DotProduct)
        return ewSize;
    return 2 * macs();
}

void
Layer::validate() const
{
    switch (kind) {
      case LayerKind::FullyConnected:
        if (fcIn <= 0 || fcOut <= 0)
            fatal("FC layer '%s' needs positive dims (in=%lld out=%lld)",
                  name.c_str(), static_cast<long long>(fcIn),
                  static_cast<long long>(fcOut));
        break;
      case LayerKind::Conv2D:
        if (inH <= 0 || inW <= 0 || inC <= 0 || kH <= 0 || kW <= 0 ||
            outC <= 0 || stride <= 0 || pad < 0) {
            fatal("Conv2D layer '%s' has non-positive dims",
                  name.c_str());
        }
        if (inH + 2 * pad < kH || inW + 2 * pad < kW)
            fatal("Conv2D layer '%s': kernel larger than padded input",
                  name.c_str());
        break;
      case LayerKind::ElementWise:
        if (ewSize <= 0)
            fatal("element-wise layer '%s' needs positive size",
                  name.c_str());
        break;
    }
}

} // namespace deepstore::nn
