#include "nn/weights.h"

#include <cmath>

#include "common/logging.h"
#include "common/rng.h"

namespace deepstore::nn {

ModelWeights
ModelWeights::random(const Model &model, std::uint64_t seed)
{
    ModelWeights w;
    const auto &layers = model.layers();
    for (std::size_t i = 0; i < layers.size(); ++i) {
        const Layer &l = layers[i];
        Tensor kernel;
        Tensor bias;
        switch (l.kind) {
          case LayerKind::FullyConnected: {
            kernel = Tensor({l.fcOut, l.fcIn});
            double s = std::sqrt(
                6.0 / static_cast<double>(l.fcIn + l.fcOut));
            kernel.fillRandom(seed + 2 * i, static_cast<float>(s));
            if (l.fcBias) {
                bias = Tensor({l.fcOut});
                bias.fillRandom(seed + 2 * i + 1,
                                static_cast<float>(s * 0.1));
            }
            break;
          }
          case LayerKind::Conv2D: {
            kernel = Tensor({l.kH, l.kW, l.inC, l.outC});
            double fan_in = static_cast<double>(l.kH * l.kW * l.inC);
            double fan_out = static_cast<double>(l.kH * l.kW * l.outC);
            double s = std::sqrt(6.0 / (fan_in + fan_out));
            kernel.fillRandom(seed + 2 * i, static_cast<float>(s));
            bias = Tensor({l.outC});
            bias.fillRandom(seed + 2 * i + 1,
                            static_cast<float>(s * 0.1));
            break;
          }
          case LayerKind::ElementWise:
            // No parameters.
            break;
        }
        w.kernels_.push_back(std::move(kernel));
        w.biases_.push_back(std::move(bias));
    }
    return w;
}

std::int64_t
ModelWeights::parameterCount() const
{
    std::int64_t n = 0;
    for (std::size_t i = 0; i < kernels_.size(); ++i) {
        n += static_cast<std::int64_t>(kernels_[i].volume());
        n += static_cast<std::int64_t>(biases_[i].volume());
    }
    return n;
}

void
ModelWeights::append(Tensor kernel, Tensor bias)
{
    kernels_.push_back(std::move(kernel));
    biases_.push_back(std::move(bias));
}

} // namespace deepstore::nn
