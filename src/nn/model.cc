#include "nn/model.h"

#include "common/logging.h"

namespace deepstore::nn {

Model::Model(std::string name, std::int64_t feature_dim,
             bool concat_inputs)
    : modelName_(std::move(name)), featureDim_(feature_dim),
      concatInputs_(concat_inputs)
{
    if (feature_dim <= 0)
        fatal("model '%s': feature dimension must be positive",
              modelName_.c_str());
}

void
Model::addLayer(Layer layer)
{
    layer.validate();
    layers_.push_back(std::move(layer));
}

std::int64_t
Model::layerInputDim(std::size_t i) const
{
    DS_ASSERT(i < layers_.size());
    if (i == 0) {
        if (layers_[0].kind == LayerKind::ElementWise)
            return featureDim_; // per-branch; combiner takes two
        return concatInputs_ ? 2 * featureDim_ : featureDim_;
    }
    return layers_[i - 1].outputCount();
}

std::int64_t
Model::outputDim() const
{
    DS_ASSERT(!layers_.empty());
    return layers_.back().outputCount();
}

std::int64_t
Model::totalMacs() const
{
    std::int64_t total = 0;
    for (const auto &l : layers_)
        total += l.macs();
    return total;
}

std::int64_t
Model::totalFlops() const
{
    std::int64_t total = 0;
    for (const auto &l : layers_)
        total += l.flops();
    return total;
}

std::int64_t
Model::totalWeightCount() const
{
    std::int64_t total = 0;
    for (const auto &l : layers_)
        total += l.weightCount();
    return total;
}

std::size_t
Model::countLayers(LayerKind kind) const
{
    std::size_t n = 0;
    for (const auto &l : layers_)
        if (l.kind == kind)
            ++n;
    return n;
}

void
Model::validate() const
{
    if (layers_.empty())
        fatal("model '%s' has no layers", modelName_.c_str());
    for (std::size_t i = 0; i < layers_.size(); ++i) {
        const Layer &l = layers_[i];
        l.validate();
        if (l.kind == LayerKind::ElementWise && i != 0) {
            fatal("model '%s': element-wise layer '%s' must be the pair "
                  "combiner (layer 0)",
                  modelName_.c_str(), l.name.c_str());
        }
        std::int64_t expect = layerInputDim(i);
        std::int64_t have = (l.kind == LayerKind::ElementWise)
                                ? l.ewSize
                                : l.inputCount();
        if (have != expect) {
            fatal("model '%s': layer %zu ('%s') consumes %lld scalars "
                  "but predecessor provides %lld",
                  modelName_.c_str(), i, l.name.c_str(),
                  static_cast<long long>(have),
                  static_cast<long long>(expect));
        }
    }
}

} // namespace deepstore::nn
