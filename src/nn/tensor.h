/**
 * @file
 * Dense float tensor used by the reference (functional) executor.
 *
 * The timing/energy models never touch tensor data — they work from
 * layer shapes alone — so this class stays deliberately simple: a shape
 * plus a flat float buffer in row-major order.
 */

#ifndef DEEPSTORE_NN_TENSOR_H
#define DEEPSTORE_NN_TENSOR_H

#include <cstdint>
#include <vector>

namespace deepstore::nn {

/** Row-major dense float tensor. */
class Tensor
{
  public:
    Tensor() = default;

    /** Construct zero-filled with the given shape. */
    explicit Tensor(std::vector<std::int64_t> shape);

    /** Construct from shape and data. @pre data.size() == volume. */
    Tensor(std::vector<std::int64_t> shape, std::vector<float> data);

    /** 1-D convenience constructor. */
    static Tensor vector1d(std::vector<float> data);

    const std::vector<std::int64_t> &shape() const { return shape_; }
    std::size_t volume() const { return data_.size(); }

    float *data() { return data_.data(); }
    const float *data() const { return data_.data(); }

    float &operator[](std::size_t i) { return data_[i]; }
    float operator[](std::size_t i) const { return data_[i]; }

    /** Element access for a 3-D (H, W, C) tensor. */
    float &at3(std::int64_t h, std::int64_t w, std::int64_t c);
    float at3(std::int64_t h, std::int64_t w, std::int64_t c) const;

    /** Fill with deterministic pseudo-random values in [-scale, scale]. */
    void fillRandom(std::uint64_t seed, float scale = 1.0f);

    /** Euclidean norm of the flattened tensor. */
    double norm() const;

    /** Reshape in place; the volume must be preserved. */
    void reshape(std::vector<std::int64_t> shape);

    std::vector<float> &storage() { return data_; }
    const std::vector<float> &storage() const { return data_; }

  private:
    std::vector<std::int64_t> shape_;
    std::vector<float> data_;
};

} // namespace deepstore::nn

#endif // DEEPSTORE_NN_TENSOR_H
