#include "nn/serialize.h"

#include <cstring>
#include <fstream>

#include "common/logging.h"

namespace deepstore::nn {

namespace {

constexpr std::uint32_t kMagic = 0x4E4E5344; // "DSNN" little-endian
constexpr std::uint32_t kVersion = 1;

class Writer
{
  public:
    explicit Writer(std::vector<std::uint8_t> &out) : out_(out) {}

    void
    u32(std::uint32_t v)
    {
        raw(&v, sizeof(v));
    }

    void
    i64(std::int64_t v)
    {
        raw(&v, sizeof(v));
    }

    void
    str(const std::string &s)
    {
        u32(static_cast<std::uint32_t>(s.size()));
        raw(s.data(), s.size());
    }

    void
    floats(const std::vector<float> &v)
    {
        i64(static_cast<std::int64_t>(v.size()));
        raw(v.data(), v.size() * sizeof(float));
    }

    void
    tensor(const Tensor &t)
    {
        u32(static_cast<std::uint32_t>(t.shape().size()));
        for (auto d : t.shape())
            i64(d);
        floats(t.storage());
    }

  private:
    void
    raw(const void *p, std::size_t n)
    {
        const auto *b = static_cast<const std::uint8_t *>(p);
        out_.insert(out_.end(), b, b + n);
    }

    std::vector<std::uint8_t> &out_;
};

class Reader
{
  public:
    explicit Reader(const std::vector<std::uint8_t> &in) : in_(in) {}

    std::uint32_t
    u32()
    {
        std::uint32_t v;
        raw(&v, sizeof(v));
        return v;
    }

    std::int64_t
    i64()
    {
        std::int64_t v;
        raw(&v, sizeof(v));
        return v;
    }

    std::string
    str()
    {
        std::uint32_t n = u32();
        check(n);
        std::string s(reinterpret_cast<const char *>(in_.data() + pos_),
                      n);
        pos_ += n;
        return s;
    }

    std::vector<float>
    floats()
    {
        std::int64_t n = i64();
        if (n < 0)
            fatal("model blob corrupt: negative float count");
        check(static_cast<std::size_t>(n) * sizeof(float));
        std::vector<float> v(static_cast<std::size_t>(n));
        std::memcpy(v.data(), in_.data() + pos_,
                    v.size() * sizeof(float));
        pos_ += v.size() * sizeof(float);
        return v;
    }

    Tensor
    tensor()
    {
        std::uint32_t rank = u32();
        if (rank > 8)
            fatal("model blob corrupt: tensor rank %u", rank);
        std::vector<std::int64_t> shape(rank);
        for (auto &d : shape)
            d = i64();
        auto data = floats();
        if (shape.empty() && data.empty())
            return Tensor();
        return Tensor(std::move(shape), std::move(data));
    }

    bool atEnd() const { return pos_ == in_.size(); }

  private:
    void
    check(std::size_t n)
    {
        if (pos_ + n > in_.size())
            fatal("model blob truncated at offset %zu (need %zu bytes)",
                  pos_, n);
    }

    void
    raw(void *p, std::size_t n)
    {
        check(n);
        std::memcpy(p, in_.data() + pos_, n);
        pos_ += n;
    }

    const std::vector<std::uint8_t> &in_;
    std::size_t pos_ = 0;
};

void
writeLayer(Writer &w, const Layer &l)
{
    w.str(l.name);
    w.u32(static_cast<std::uint32_t>(l.kind));
    w.u32(static_cast<std::uint32_t>(l.activation));
    w.i64(l.fcIn);
    w.i64(l.fcOut);
    w.u32(l.fcBias ? 1 : 0);
    w.i64(l.inH);
    w.i64(l.inW);
    w.i64(l.inC);
    w.i64(l.kH);
    w.i64(l.kW);
    w.i64(l.outC);
    w.i64(l.stride);
    w.i64(l.pad);
    w.u32(static_cast<std::uint32_t>(l.ewOp));
    w.i64(l.ewSize);
}

Layer
readLayer(Reader &r)
{
    Layer l;
    l.name = r.str();
    l.kind = static_cast<LayerKind>(r.u32());
    l.activation = static_cast<Activation>(r.u32());
    l.fcIn = r.i64();
    l.fcOut = r.i64();
    l.fcBias = r.u32() != 0;
    l.inH = r.i64();
    l.inW = r.i64();
    l.inC = r.i64();
    l.kH = r.i64();
    l.kW = r.i64();
    l.outC = r.i64();
    l.stride = r.i64();
    l.pad = r.i64();
    l.ewOp = static_cast<EwOp>(r.u32());
    l.ewSize = r.i64();
    l.validate();
    return l;
}

} // namespace

std::vector<std::uint8_t>
serializeModel(const Model &model, const ModelWeights &weights)
{
    model.validate();
    if (weights.numLayers() != model.numLayers())
        fatal("serializeModel: weight/layer count mismatch (%zu vs %zu)",
              weights.numLayers(), model.numLayers());

    std::vector<std::uint8_t> out;
    Writer w(out);
    w.u32(kMagic);
    w.u32(kVersion);
    w.str(model.name());
    w.i64(model.featureDim());
    w.u32(model.concatInputs() ? 1 : 0);
    w.u32(static_cast<std::uint32_t>(model.numLayers()));
    for (const auto &l : model.layers())
        writeLayer(w, l);
    for (std::size_t i = 0; i < model.numLayers(); ++i) {
        w.tensor(weights.kernel(i));
        w.tensor(weights.bias(i));
    }
    return out;
}

ModelBundle
deserializeModel(const std::vector<std::uint8_t> &blob)
{
    Reader r(blob);
    if (r.u32() != kMagic)
        fatal("model blob corrupt: bad magic");
    std::uint32_t version = r.u32();
    if (version != kVersion)
        fatal("model blob version %u unsupported (expected %u)",
              version, kVersion);

    std::string name = r.str();
    std::int64_t feature_dim = r.i64();
    bool concat = r.u32() != 0;
    std::uint32_t n_layers = r.u32();
    if (n_layers == 0 || n_layers > 4096)
        fatal("model blob corrupt: layer count %u", n_layers);

    Model model(name, feature_dim, concat);
    for (std::uint32_t i = 0; i < n_layers; ++i)
        model.addLayer(readLayer(r));
    model.validate();

    ModelWeights weights;
    for (std::uint32_t i = 0; i < n_layers; ++i) {
        Tensor kernel = r.tensor();
        Tensor bias = r.tensor();
        weights.append(std::move(kernel), std::move(bias));
    }
    if (!r.atEnd())
        fatal("model blob has trailing bytes");
    return ModelBundle{std::move(model), std::move(weights)};
}

void
saveModelFile(const std::string &path, const Model &model,
              const ModelWeights &weights)
{
    auto blob = serializeModel(model, weights);
    std::ofstream f(path, std::ios::binary);
    if (!f)
        fatal("cannot open '%s' for writing", path.c_str());
    f.write(reinterpret_cast<const char *>(blob.data()),
            static_cast<std::streamsize>(blob.size()));
    if (!f)
        fatal("short write to '%s'", path.c_str());
}

ModelBundle
loadModelFile(const std::string &path)
{
    std::ifstream f(path, std::ios::binary | std::ios::ate);
    if (!f)
        fatal("cannot open '%s' for reading", path.c_str());
    auto size = static_cast<std::size_t>(f.tellg());
    f.seekg(0);
    std::vector<std::uint8_t> blob(size);
    f.read(reinterpret_cast<char *>(blob.data()),
           static_cast<std::streamsize>(size));
    if (!f)
        fatal("short read from '%s'", path.c_str());
    return deserializeModel(blob);
}

} // namespace deepstore::nn
