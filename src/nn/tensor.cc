#include "nn/tensor.h"

#include <cmath>

#include "common/logging.h"
#include "common/rng.h"

namespace deepstore::nn {

namespace {

std::size_t
shapeVolume(const std::vector<std::int64_t> &shape)
{
    std::size_t v = 1;
    for (auto d : shape) {
        DS_ASSERT(d >= 0);
        v *= static_cast<std::size_t>(d);
    }
    return shape.empty() ? 0 : v;
}

} // namespace

Tensor::Tensor(std::vector<std::int64_t> shape)
    : shape_(std::move(shape)), data_(shapeVolume(shape_), 0.0f)
{
}

Tensor::Tensor(std::vector<std::int64_t> shape, std::vector<float> data)
    : shape_(std::move(shape)), data_(std::move(data))
{
    if (data_.size() != shapeVolume(shape_))
        panic("tensor data size %zu does not match shape volume %zu",
              data_.size(), shapeVolume(shape_));
}

Tensor
Tensor::vector1d(std::vector<float> data)
{
    auto n = static_cast<std::int64_t>(data.size());
    return Tensor({n}, std::move(data));
}

float &
Tensor::at3(std::int64_t h, std::int64_t w, std::int64_t c)
{
    DS_ASSERT(shape_.size() == 3);
    return data_[static_cast<std::size_t>(
        (h * shape_[1] + w) * shape_[2] + c)];
}

float
Tensor::at3(std::int64_t h, std::int64_t w, std::int64_t c) const
{
    DS_ASSERT(shape_.size() == 3);
    return data_[static_cast<std::size_t>(
        (h * shape_[1] + w) * shape_[2] + c)];
}

void
Tensor::fillRandom(std::uint64_t seed, float scale)
{
    Rng rng(seed);
    for (auto &v : data_)
        v = static_cast<float>(rng.uniform(-scale, scale));
}

double
Tensor::norm() const
{
    double s = 0.0;
    for (float v : data_)
        s += static_cast<double>(v) * static_cast<double>(v);
    return std::sqrt(s);
}

void
Tensor::reshape(std::vector<std::int64_t> shape)
{
    if (shapeVolume(shape) != data_.size())
        panic("reshape volume mismatch: %zu vs %zu",
              shapeVolume(shape), data_.size());
    shape_ = std::move(shape);
}

} // namespace deepstore::nn
