#include "nn/executor.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace deepstore::nn {

namespace {

float
applyActivation(Activation act, float x)
{
    switch (act) {
      case Activation::None:
        return x;
      case Activation::ReLU:
        return x > 0.0f ? x : 0.0f;
      case Activation::Sigmoid:
        return 1.0f / (1.0f + std::exp(-x));
    }
    return x;
}

} // namespace

Executor::Executor(const Model &model, const ModelWeights &weights)
    : model_(model), weights_(weights)
{
    model_.validate();
    if (weights_.numLayers() != model_.numLayers())
        fatal("executor: weights have %zu layers, model has %zu",
              weights_.numLayers(), model_.numLayers());
}

std::vector<float>
Executor::run(const std::vector<float> &qfv,
              const std::vector<float> &dfv) const
{
    auto dim = static_cast<std::size_t>(model_.featureDim());
    if (qfv.size() != dim || dfv.size() != dim)
        fatal("executor: feature size mismatch (got %zu/%zu, want %zu)",
              qfv.size(), dfv.size(), dim);

    std::vector<float> cur;
    const auto &layers = model_.layers();
    if (layers[0].kind == LayerKind::ElementWise) {
        cur = runLayer(0, qfv, dfv);
    } else if (model_.concatInputs()) {
        cur = qfv;
        cur.insert(cur.end(), dfv.begin(), dfv.end());
        cur = runLayer(0, cur, {});
    } else {
        cur = runLayer(0, dfv, {});
    }
    for (std::size_t i = 1; i < layers.size(); ++i)
        cur = runLayer(i, cur, {});
    return cur;
}

float
Executor::scoreFromOutput(const std::vector<float> &out)
{
    DS_ASSERT(!out.empty());
    if (out.size() == 1)
        return applyActivation(Activation::Sigmoid, out[0]);
    if (out.size() == 2) {
        // Numerically stable 2-way softmax; index 1 is "match".
        float m = std::max(out[0], out[1]);
        float e0 = std::exp(out[0] - m);
        float e1 = std::exp(out[1] - m);
        return e1 / (e0 + e1);
    }
    float mean = 0.0f;
    for (float v : out)
        mean += v;
    mean /= static_cast<float>(out.size());
    return applyActivation(Activation::Sigmoid, mean);
}

float
Executor::score(const std::vector<float> &qfv,
                const std::vector<float> &dfv) const
{
    return scoreFromOutput(run(qfv, dfv));
}

std::vector<float>
Executor::runLayer(std::size_t idx, const std::vector<float> &in,
                   const std::vector<float> &aux) const
{
    const Layer &l = model_.layers()[idx];
    std::vector<float> out;
    switch (l.kind) {
      case LayerKind::FullyConnected: {
        auto n_in = static_cast<std::size_t>(l.fcIn);
        auto n_out = static_cast<std::size_t>(l.fcOut);
        DS_ASSERT(in.size() == n_in);
        const Tensor &w = weights_.kernel(idx);
        const Tensor &b = weights_.bias(idx);
        out.assign(n_out, 0.0f);
        for (std::size_t o = 0; o < n_out; ++o) {
            float acc = l.fcBias ? b[o] : 0.0f;
            const float *row = w.data() + o * n_in;
            for (std::size_t i = 0; i < n_in; ++i)
                acc += row[i] * in[i];
            out[o] = applyActivation(l.activation, acc);
        }
        break;
      }
      case LayerKind::Conv2D: {
        DS_ASSERT(in.size() ==
                  static_cast<std::size_t>(l.inH * l.inW * l.inC));
        const Tensor &w = weights_.kernel(idx);
        const Tensor &b = weights_.bias(idx);
        std::int64_t oh = l.outH(), ow = l.outW();
        out.assign(static_cast<std::size_t>(oh * ow * l.outC), 0.0f);
        auto in_at = [&](std::int64_t h, std::int64_t wx,
                         std::int64_t c) -> float {
            if (h < 0 || h >= l.inH || wx < 0 || wx >= l.inW)
                return 0.0f;
            return in[static_cast<std::size_t>(
                (h * l.inW + wx) * l.inC + c)];
        };
        // Kernel layout: (kH, kW, inC, outC).
        for (std::int64_t y = 0; y < oh; ++y) {
            for (std::int64_t x = 0; x < ow; ++x) {
                for (std::int64_t oc = 0; oc < l.outC; ++oc) {
                    float acc = b[static_cast<std::size_t>(oc)];
                    for (std::int64_t ky = 0; ky < l.kH; ++ky) {
                        for (std::int64_t kx = 0; kx < l.kW; ++kx) {
                            for (std::int64_t ic = 0; ic < l.inC; ++ic) {
                                float iv = in_at(
                                    y * l.stride + ky - l.pad,
                                    x * l.stride + kx - l.pad, ic);
                                float wv = w[static_cast<std::size_t>(
                                    ((ky * l.kW + kx) * l.inC + ic) *
                                        l.outC +
                                    oc)];
                                acc += iv * wv;
                            }
                        }
                    }
                    out[static_cast<std::size_t>(
                        (y * ow + x) * l.outC + oc)] =
                        applyActivation(l.activation, acc);
                }
            }
        }
        break;
      }
      case LayerKind::ElementWise: {
        auto n = static_cast<std::size_t>(l.ewSize);
        DS_ASSERT(in.size() == n && aux.size() == n);
        switch (l.ewOp) {
          case EwOp::Add:
            out.resize(n);
            for (std::size_t i = 0; i < n; ++i)
                out[i] = in[i] + aux[i];
            break;
          case EwOp::Subtract:
            out.resize(n);
            for (std::size_t i = 0; i < n; ++i)
                out[i] = in[i] - aux[i];
            break;
          case EwOp::Multiply:
            out.resize(n);
            for (std::size_t i = 0; i < n; ++i)
                out[i] = in[i] * aux[i];
            break;
          case EwOp::DotProduct: {
            float acc = 0.0f;
            for (std::size_t i = 0; i < n; ++i)
                acc += in[i] * aux[i];
            out.assign(1, acc);
            break;
          }
        }
        break;
      }
    }
    return out;
}

} // namespace deepstore::nn
