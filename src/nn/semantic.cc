#include "nn/semantic.h"

#include "common/logging.h"

namespace deepstore::nn {

namespace {

/**
 * State threaded through the construction: whether the running
 * activations grow with similarity (+1) or with distance (-1), and
 * whether the absolute-value trick still needs to be realized by the
 * next weighted layer.
 */
struct BuildState
{
    int polarity = +1;
    bool needAbs = false;
};

void
buildFirstAbsFc(const Layer &l, std::int64_t branch_dim, bool concat,
                Tensor &kernel, Tensor &bias)
{
    // Rows come in +/- pairs, each tapping one input dimension, so
    // ReLU(W x) holds the positive and negative parts of the
    // difference across sampled dimensions.
    kernel = Tensor({l.fcOut, l.fcIn});
    for (std::int64_t j = 0; j < l.fcOut; ++j) {
        float sign = (j % 2 == 0) ? 1.0f : -1.0f;
        std::int64_t dim = (j / 2) % branch_dim;
        if (concat) {
            // (q - d) projection: +1 on q's copy, -1 on d's copy.
            kernel[static_cast<std::size_t>(j * l.fcIn + dim)] = sign;
            kernel[static_cast<std::size_t>(j * l.fcIn + branch_dim +
                                            dim)] = -sign;
        } else {
            kernel[static_cast<std::size_t>(j * l.fcIn + dim)] = sign;
        }
    }
    if (l.fcBias)
        bias = Tensor({l.fcOut});
}

void
buildFirstAbsConv(const Layer &l, Tensor &kernel, Tensor &bias)
{
    // Single-tap kernels in +/- channel pairs (see buildFirstAbsFc).
    kernel = Tensor({l.kH, l.kW, l.inC, l.outC});
    std::int64_t cy = l.kH / 2, cx = l.kW / 2;
    for (std::int64_t o = 0; o < l.outC; ++o) {
        float sign = (o % 2 == 0) ? 1.0f : -1.0f;
        std::int64_t c = (o / 2) % l.inC;
        kernel[static_cast<std::size_t>(
            ((cy * l.kW + cx) * l.inC + c) * l.outC + o)] = sign;
    }
    bias = Tensor({l.outC});
}

void
buildAveragingFc(const Layer &l, float scale, Tensor &kernel,
                 Tensor &bias)
{
    kernel = Tensor({l.fcOut, l.fcIn});
    float w = scale / static_cast<float>(l.fcIn);
    for (std::size_t i = 0; i < kernel.volume(); ++i)
        kernel[i] = w;
    if (l.fcBias)
        bias = Tensor({l.fcOut});
}

void
buildAveragingConv(const Layer &l, Tensor &kernel, Tensor &bias)
{
    kernel = Tensor({l.kH, l.kW, l.inC, l.outC});
    float w = 1.0f / static_cast<float>(l.kH * l.kW * l.inC);
    for (std::size_t i = 0; i < kernel.volume(); ++i)
        kernel[i] = w;
    bias = Tensor({l.outC});
}

/** Output head: polarity decides the sign so that "match" logits
 *  grow with similarity. */
void
buildHeadFc(const Layer &l, int polarity, Tensor &kernel, Tensor &bias)
{
    constexpr float kLogitScale = 8.0f;
    kernel = Tensor({l.fcOut, l.fcIn});
    float w = kLogitScale * static_cast<float>(polarity) /
              static_cast<float>(l.fcIn);
    if (l.fcOut == 2) {
        // Row 0 = "no match", row 1 = "match" (softmax index 1).
        for (std::int64_t i = 0; i < l.fcIn; ++i) {
            kernel[static_cast<std::size_t>(i)] = -w;
            kernel[static_cast<std::size_t>(l.fcIn + i)] = w;
        }
    } else {
        for (std::size_t i = 0; i < kernel.volume(); ++i)
            kernel[i] = w;
    }
    if (l.fcBias)
        bias = Tensor({l.fcOut});
}

} // namespace

ModelWeights
semanticWeights(const Model &model)
{
    model.validate();
    ModelWeights out;
    const auto &layers = model.layers();

    BuildState state;
    if (layers[0].kind == LayerKind::ElementWise) {
        switch (layers[0].ewOp) {
          case EwOp::Multiply:
          case EwOp::DotProduct:
          case EwOp::Add:
            state.polarity = +1;
            state.needAbs = false;
            break;
          case EwOp::Subtract:
            state.polarity = -1;
            state.needAbs = true;
            break;
        }
    } else if (model.concatInputs()) {
        state.polarity = -1;
        state.needAbs = true;
    } else {
        fatal("semanticWeights: model '%s' is neither element-wise "
              "fused nor concatenated",
              model.name().c_str());
    }

    for (std::size_t i = 0; i < layers.size(); ++i) {
        const Layer &l = layers[i];
        Tensor kernel, bias;
        bool last = (i + 1 == layers.size());
        switch (l.kind) {
          case LayerKind::ElementWise:
            break; // no parameters
          case LayerKind::FullyConnected:
            if (state.needAbs) {
                bool concat = model.concatInputs() && i == 0;
                std::int64_t branch =
                    concat ? model.featureDim() : l.fcIn;
                buildFirstAbsFc(l, branch, concat, kernel, bias);
                state.needAbs = false;
            } else if (last) {
                buildHeadFc(l, state.polarity, kernel, bias);
            } else {
                buildAveragingFc(l, 1.0f, kernel, bias);
            }
            break;
          case LayerKind::Conv2D:
            if (state.needAbs) {
                buildFirstAbsConv(l, kernel, bias);
                state.needAbs = false;
            } else {
                buildAveragingConv(l, kernel, bias);
            }
            break;
        }
        out.append(std::move(kernel), std::move(bias));
    }
    return out;
}

} // namespace deepstore::nn
