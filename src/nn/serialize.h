/**
 * @file
 * "ONNX-lite" serialization for SCN/QCN models.
 *
 * The paper's loadModel API ships a computational graph plus weights
 * in an exchange format (ONNX, §4.7.2). We implement a self-contained
 * binary equivalent (magic "DSNN", version 1) so the DeepStore API can
 * accept a model as a flat byte blob, exactly like the real system
 * would receive it over NVMe.
 */

#ifndef DEEPSTORE_NN_SERIALIZE_H
#define DEEPSTORE_NN_SERIALIZE_H

#include <cstdint>
#include <string>
#include <vector>

#include "nn/model.h"
#include "nn/weights.h"

namespace deepstore::nn {

/** A model bundled with its weights, as shipped to loadModel(). */
struct ModelBundle
{
    Model model;
    ModelWeights weights;
};

/** Serialize a model + weights into a flat byte blob. */
std::vector<std::uint8_t> serializeModel(const Model &model,
                                         const ModelWeights &weights);

/**
 * Parse a blob produced by serializeModel().
 * fatal()s on a truncated or corrupt blob (bad magic/version/shape).
 */
ModelBundle deserializeModel(const std::vector<std::uint8_t> &blob);

/** Write a serialized bundle to a file. fatal() on I/O failure. */
void saveModelFile(const std::string &path, const Model &model,
                   const ModelWeights &weights);

/** Read a bundle from a file. fatal() on I/O failure or corruption. */
ModelBundle loadModelFile(const std::string &path);

} // namespace deepstore::nn

#endif // DEEPSTORE_NN_SERIALIZE_H
