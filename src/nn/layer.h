/**
 * @file
 * Layer descriptors for similarity-comparison networks (SCNs).
 *
 * The paper's workload study (§3, Table 1) finds SCNs are built from
 * convolutional, fully-connected, and element-wise layers plus a final
 * top-K sort; these descriptors capture exactly that operation set.
 * Each descriptor knows its shape arithmetic (outputs, MACs, FLOPs,
 * weight counts) so both the functional executor and the systolic
 * timing model can consume it.
 */

#ifndef DEEPSTORE_NN_LAYER_H
#define DEEPSTORE_NN_LAYER_H

#include <cstdint>
#include <string>

namespace deepstore::nn {

/** The operation a layer performs. */
enum class LayerKind
{
    FullyConnected,
    Conv2D,
    ElementWise,
};

/** Element-wise operation variants (paper §4.3). */
enum class EwOp
{
    Add,
    Subtract,
    Multiply,
    DotProduct, ///< multiply + horizontal reduce to a scalar
};

/** Pointwise activation applied after a layer. */
enum class Activation
{
    None,
    ReLU,
    Sigmoid,
};

const char *toString(LayerKind kind);
const char *toString(EwOp op);
const char *toString(Activation act);

/**
 * A single SCN layer. A tagged struct rather than a class hierarchy:
 * the set of operations is closed (per the workload study) and flat
 * data keeps the timing models trivial to drive.
 */
struct Layer
{
    std::string name;
    LayerKind kind = LayerKind::FullyConnected;
    Activation activation = Activation::None;

    // FullyConnected: y[out] = W[out][in] * x[in] + b[out]
    std::int64_t fcIn = 0;
    std::int64_t fcOut = 0;
    bool fcBias = true;

    // Conv2D: input (H, W, C), kernel (kH, kW, C, outC), stride, pad.
    std::int64_t inH = 0, inW = 0, inC = 0;
    std::int64_t kH = 0, kW = 0, outC = 0;
    std::int64_t stride = 1;
    std::int64_t pad = 0;

    // ElementWise over vectors of `ewSize` elements.
    EwOp ewOp = EwOp::Add;
    std::int64_t ewSize = 0;

    /** Build a fully-connected layer. */
    static Layer fc(std::string name, std::int64_t in, std::int64_t out,
                    Activation act = Activation::ReLU, bool bias = true);

    /** Build a 2-D convolution layer ("same" channel-last layout). */
    static Layer conv2d(std::string name, std::int64_t in_h,
                        std::int64_t in_w, std::int64_t in_c,
                        std::int64_t k_h, std::int64_t k_w,
                        std::int64_t out_c, std::int64_t stride = 1,
                        std::int64_t pad = 0,
                        Activation act = Activation::ReLU);

    /** Build an element-wise layer. */
    static Layer elementWise(std::string name, EwOp op, std::int64_t size);

    /** Spatial output height (Conv2D only). */
    std::int64_t outH() const;
    /** Spatial output width (Conv2D only). */
    std::int64_t outW() const;

    /** Number of input scalars the layer consumes. */
    std::int64_t inputCount() const;
    /** Number of output scalars the layer produces. */
    std::int64_t outputCount() const;

    /** Trainable parameter count (weights + biases). */
    std::int64_t weightCount() const;

    /** Multiply-accumulate count for one inference. */
    std::int64_t macs() const;

    /**
     * Floating-point operations for one inference. Follows the common
     * convention (used by Table 1 of the paper) of 2 FLOPs per MAC; an
     * element-wise Add/Subtract/Multiply counts 1 FLOP per element and
     * DotProduct counts 2 (multiply + add into the reduction).
     */
    std::int64_t flops() const;

    /** Validate internal consistency; fatal() on a malformed layer. */
    void validate() const;
};

} // namespace deepstore::nn

#endif // DEEPSTORE_NN_LAYER_H
