/**
 * @file
 * Closed-form steady-state flash streaming throughput.
 *
 * The event-driven model is exact but costs one event per page; the
 * paper's largest experiments stream hundreds of millions of features,
 * so the query-level simulations use this closed form and the test
 * suite cross-validates it against the event-driven controller.
 *
 * For a channel streaming features laid out per §4.4 (features never
 * straddle pages; small features pack per page; large features span
 * ceil(size/page) pages):
 *
 *   plane-limited page rate = planes_per_channel / read_latency
 *   bus-limited page rate   = bus_bw / transferred_bytes_per_page
 *   page rate               = min(plane rate, bus rate)
 */

#ifndef DEEPSTORE_SSD_THROUGHPUT_H
#define DEEPSTORE_SSD_THROUGHPUT_H

#include <algorithm>
#include <cstdint>

#include "common/logging.h"
#include "ssd/flash_params.h"

namespace deepstore::ssd {

/** Feature-vector flash layout arithmetic (paper §4.4 / §6.4). */
struct FeatureLayout
{
    std::uint64_t featureBytes = 0;
    std::uint64_t pageBytes = 0;

    /** Features stored per page (>= 1 region granularity). */
    std::uint64_t
    featuresPerPage() const
    {
        DS_ASSERT(featureBytes > 0 && pageBytes > 0);
        return std::max<std::uint64_t>(1, pageBytes / featureBytes);
    }

    /** Pages occupied by one feature (1 for packed small features). */
    std::uint64_t
    pagesPerFeature() const
    {
        DS_ASSERT(featureBytes > 0 && pageBytes > 0);
        return (featureBytes + pageBytes - 1) / pageBytes;
    }

    /** Pages needed to store n features. */
    std::uint64_t
    pagesForFeatures(std::uint64_t n) const
    {
        if (featureBytes <= pageBytes) {
            std::uint64_t fpp = featuresPerPage();
            return (n + fpp - 1) / fpp;
        }
        return n * pagesPerFeature();
    }

    /** Bytes moved over the channel bus per page of this database
     *  (partial-page transfer of the useful payload only). */
    std::uint64_t
    transferBytesPerPage() const
    {
        if (featureBytes <= pageBytes)
            return featuresPerPage() * featureBytes;
        // Large features: average useful bytes per occupied page (the
        // final page of each feature may be partial).
        return featureBytes / pagesPerFeature();
    }
};

/** Steady-state page read rate of one channel (pages/second). */
inline double
channelPageRate(const FlashParams &p, std::uint64_t transfer_bytes)
{
    double plane_rate =
        static_cast<double>(p.planesPerChip) * p.chipsPerChannel /
        p.readLatency;
    double bus_rate =
        transfer_bytes == 0
            ? plane_rate
            : p.channelBandwidth / static_cast<double>(transfer_bytes);
    return std::min(plane_rate, bus_rate);
}

/** Steady-state rate at which one channel delivers whole features. */
inline double
channelFeatureRate(const FlashParams &p, std::uint64_t feature_bytes)
{
    FeatureLayout layout{feature_bytes, p.pageBytes};
    double pages_per_sec =
        channelPageRate(p, layout.transferBytesPerPage());
    if (feature_bytes <= p.pageBytes)
        return pages_per_sec *
               static_cast<double>(layout.featuresPerPage());
    return pages_per_sec /
           static_cast<double>(layout.pagesPerFeature());
}

/** Aggregate feature delivery rate of the whole SSD's internal side. */
inline double
ssdInternalFeatureRate(const FlashParams &p, std::uint64_t feature_bytes)
{
    return channelFeatureRate(p, feature_bytes) * p.channels;
}

} // namespace deepstore::ssd

#endif // DEEPSTORE_SSD_THROUGHPUT_H
