/**
 * @file
 * Per-channel flash controller: schedules page reads/programs against
 * plane-level timing and channel-bus contention.
 *
 * The timing model is the standard one for NAND: a read occupies the
 * target plane for the array read latency (moving the page into the
 * plane's page buffer), then the data transfer occupies the shared
 * channel bus for bytes / bus-bandwidth. Planes on the same chip and
 * chips on the same channel overlap their array reads; only the bus
 * serializes. Partial-page transfers are supported (ONFI column
 * addressing), which matters for small feature vectors.
 */

#ifndef DEEPSTORE_SSD_FLASH_CONTROLLER_H
#define DEEPSTORE_SSD_FLASH_CONTROLLER_H

#include <functional>
#include <vector>

#include "common/stats.h"
#include "sim/event_queue.h"
#include "ssd/geometry.h"

namespace deepstore::ssd {

/** Kind of flash operation. */
enum class FlashOp
{
    Read,
    Program,
    Erase,
};

/** One flash command against a page (or block, for erase). */
struct FlashCommand
{
    FlashOp op = FlashOp::Read;
    PageAddress addr;
    /** Bytes to move over the bus (<= pageBytes; 0 for erase). */
    std::uint64_t transferBytes = 0;
    /** Completion callback (fires when data is on the bus-side). */
    std::function<void(Tick)> onComplete;
};

/**
 * Controller for one flash channel. Uses time-stamped resource
 * reservation: per-plane busy-until and bus busy-until timestamps,
 * with completions delivered through the event queue.
 */
class FlashController
{
  public:
    FlashController(sim::EventQueue &events, const FlashParams &params,
                    std::uint32_t channel_id, StatGroup &stats);

    /** Issue a command now; completion arrives via the event queue. */
    void issue(FlashCommand cmd);

    /**
     * Earliest tick at which a newly issued read to the given plane
     * would complete (used by schedulers for load estimates).
     */
    Tick estimateReadCompletion(const PageAddress &addr,
                                std::uint64_t bytes) const;

    std::uint32_t channelId() const { return channelId_; }

    /** Tick at which the channel bus frees up. */
    Tick busBusyUntil() const { return busBusyUntil_; }

  private:
    Tick &planeBusyUntil(const PageAddress &addr);
    Tick planeBusyUntilConst(const PageAddress &addr) const;

    /** Deterministic failure-injection decision for a page. */
    bool needsRetry(const PageAddress &addr) const;

    sim::EventQueue &events_;
    FlashParams params_;
    std::uint32_t channelId_;
    StatGroup &stats_;

    /** busy-until per (chip, plane). */
    std::vector<Tick> planeBusy_;
    Tick busBusyUntil_ = 0;
};

} // namespace deepstore::ssd

#endif // DEEPSTORE_SSD_FLASH_CONTROLLER_H
