/**
 * @file
 * Per-channel flash controller: schedules page reads/programs against
 * plane-level timing and channel-bus contention.
 *
 * The timing model is the standard one for NAND: a read occupies the
 * target plane for the array read latency (moving the page into the
 * plane's page buffer), then the data transfer occupies the shared
 * channel bus for bytes / bus-bandwidth. Planes on the same chip and
 * chips on the same channel overlap their array reads; only the bus
 * serializes. Partial-page transfers are supported (ONFI column
 * addressing), which matters for small feature vectors.
 */

#ifndef DEEPSTORE_SSD_FLASH_CONTROLLER_H
#define DEEPSTORE_SSD_FLASH_CONTROLLER_H

#include <functional>
#include <vector>

#include "common/fault_injector.h"
#include "common/stats.h"
#include "sim/bandwidth.h"
#include "sim/event_queue.h"
#include "ssd/geometry.h"

namespace deepstore::ssd {

/** Kind of flash operation. */
enum class FlashOp
{
    Read,
    Program,
    Erase,
};

/** How a flash command completed. */
enum class FlashStatus : std::uint8_t
{
    Ok,            ///< first-pass success
    RetriedOk,     ///< succeeded after the read-retry ladder
    Uncorrectable, ///< ECC failure even after the full ladder
};

const char *toString(FlashStatus s);

/**
 * Opaque 64-bit fault-injection key of a physical page (the entity
 * key the FaultInjector hashes). Also used for page blacklists in
 * fault schedules.
 */
std::uint64_t faultKey(const PageAddress &addr);

/** One flash command against a page (or block, for erase). */
struct FlashCommand
{
    FlashOp op = FlashOp::Read;
    PageAddress addr;
    /** Bytes to move over the bus (<= pageBytes; 0 for erase). */
    std::uint64_t transferBytes = 0;
    /** Read-retry attempt number (fault injection re-rolls its
     *  uncorrectable decision per attempt). */
    std::uint32_t attempt = 0;
    /** Completion callback (fires when data is on the bus-side),
     *  carrying the completion tick and the command's status. */
    std::function<void(Tick, FlashStatus)> onComplete;
};

/**
 * Controller for one flash channel. Uses time-stamped resource
 * reservation: per-plane busy-until timestamps plus a shared
 * BandwidthLink for the channel bus, with completions delivered
 * through the event queue.
 */
class FlashController
{
  public:
    FlashController(sim::EventQueue &events, const FlashParams &params,
                    std::uint32_t channel_id, StatGroup &stats);

    /** Issue a command now; completion arrives via the event queue. */
    void issue(FlashCommand cmd);

    /**
     * Earliest tick at which a newly issued read to the given plane
     * would complete (used by schedulers for load estimates).
     * Accounts for the read-retry stretch and injected stalls, so the
     * estimate matches what issue() would actually produce for the
     * same attempt number.
     */
    Tick estimateReadCompletion(const PageAddress &addr,
                                std::uint64_t bytes,
                                std::uint32_t attempt = 0) const;

    std::uint32_t channelId() const { return channelId_; }

    /** Tick at which the channel bus frees up. */
    Tick busBusyUntil() const { return bus_.freeAt(); }

    /** The channel bus as a shared-bandwidth link (NoC leg of the
     *  accelerator complex); waitTicks() is the channel's NoC
     *  contention counter. */
    const sim::BandwidthLink &bus() const { return bus_; }

    const FaultInjector &injector() const { return injector_; }

    // ---- lifecycle hooks (wired by the Ssd when wear modeling is
    // enabled; both default to unset, costing one branch) ----------

    /** Returns the wear-model RBER of a page (the FTL computes it);
     *  consulted identically by issue() and estimateReadCompletion()
     *  so estimates stay exact under wear. */
    using WearProbe = std::function<double(const PageAddress &)>;
    /** Observes every *issued* page read's final status (read-disturb
     *  accounting + lifecycle threshold checks). Never called from
     *  estimateReadCompletion(). */
    using ReadObserver =
        std::function<void(const PageAddress &, FlashStatus)>;

    void setWearProbe(WearProbe probe)
    {
        wearProbe_ = std::move(probe);
    }
    void setReadObserver(ReadObserver observer)
    {
        readObserver_ = std::move(observer);
    }

    /** Power loss: every in-flight plane/bus reservation dies with
     *  the capacitors. (Their completion events still fire but the
     *  issuing layers have dropped the callbacks' targets.) */
    void powerLoss();

  private:
    /**
     * Shared timing model of one page read: array latency (with the
     * legacy retry stretch and the injected plane stall) and bus-side
     * delay (injected channel stall), plus the resulting status.
     * Used by both issue() and estimateReadCompletion() so estimates
     * stay exact under fault injection.
     */
    struct ReadTiming
    {
        Tick arrayTicks = 0;   ///< plane occupancy (incl. stalls)
        Tick channelStall = 0; ///< bus stall before the transfer
        FlashStatus status = FlashStatus::Ok;
    };
    ReadTiming readTiming(const PageAddress &addr,
                          std::uint32_t attempt) const;

    Tick &planeBusyUntil(const PageAddress &addr);
    Tick planeBusyUntilConst(const PageAddress &addr) const;

    /** Deterministic failure-injection decision for a page. */
    bool needsRetry(const PageAddress &addr) const;

    sim::EventQueue &events_;
    FlashParams params_;
    std::uint32_t channelId_;
    StatGroup &stats_;
    FaultInjector injector_;

    WearProbe wearProbe_;
    ReadObserver readObserver_;

    /** busy-until per (chip, plane). */
    std::vector<Tick> planeBusy_;
    /** The shared channel bus; only it serializes transfers. */
    sim::BandwidthLink bus_;
};

} // namespace deepstore::ssd

#endif // DEEPSTORE_SSD_FLASH_CONTROLLER_H
