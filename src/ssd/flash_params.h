/**
 * @file
 * Flash and SSD geometry/timing parameters (the SSD-Sim config block).
 *
 * Defaults follow the paper's evaluation setup (§6.1): 53 us flash
 * array read latency, 32 channels, 4 chips per channel, 8 planes per
 * chip, 512 blocks per plane, 128 pages per block, 16 KB pages, and
 * 800 MB/s per-channel bus bandwidth.
 */

#ifndef DEEPSTORE_SSD_FLASH_PARAMS_H
#define DEEPSTORE_SSD_FLASH_PARAMS_H

#include <cstdint>

#include "common/fault_injector.h"
#include "common/units.h"

namespace deepstore::ssd {

/** Static SSD configuration. */
struct FlashParams
{
    std::uint32_t channels = 32;
    std::uint32_t chipsPerChannel = 4;
    std::uint32_t planesPerChip = 8;
    std::uint32_t blocksPerPlane = 512;
    std::uint32_t pagesPerBlock = 128;
    std::uint64_t pageBytes = 16 * KiB;

    /** Flash array read latency (cell array -> page buffer). */
    double readLatency = 53e-6;
    /** Program (write) latency (page buffer -> cell array). */
    double programLatency = 500e-6;
    /** Block erase latency. */
    double eraseLatency = 3.5e-3;

    /** Per-channel bus bandwidth (ONFI-class, bytes/s). */
    double channelBandwidth = 800.0 * MB;

    /** Host interface (PCIe/NVMe) bandwidth, bytes/s (§6.1: 3.2 GB/s
     *  measured external bandwidth of the Intel DC P4500). */
    double externalBandwidth = 3.2 * GB;

    /** SSD DRAM bandwidth shared by controller + accelerators. */
    double dramBandwidth = 20.0 * GB;

    /** Embedded-CPU overhead to parse/dispatch one I/O command. */
    double commandOverhead = 2e-6;

    // ---- failure injection -------------------------------------
    // Real NAND occasionally needs read retries (charge drift, read
    // disturb). The controller models them deterministically from a
    // hash of the page address so runs stay reproducible.

    /** Probability that a page read needs a retry (0 disables). */
    double readRetryProbability = 0.0;

    /** Extra array-read latencies paid by a retried read. */
    double readRetryPenalty = 3.0;

    /**
     * Deterministic fault schedule (common/fault_injector.h):
     * uncorrectable page reads, page blacklists, transient
     * plane/channel stalls, and accelerator-unit failures. The
     * default schedule injects nothing, keeping the datapath
     * tick-identical to a fault-free build.
     */
    FaultConfig faults;

    // ---- derived quantities -------------------------------------

    std::uint64_t
    pagesPerPlane() const
    {
        return static_cast<std::uint64_t>(blocksPerPlane) * pagesPerBlock;
    }

    std::uint64_t
    pagesPerChip() const
    {
        return pagesPerPlane() * planesPerChip;
    }

    std::uint64_t
    pagesPerChannel() const
    {
        return pagesPerChip() * chipsPerChannel;
    }

    std::uint64_t
    totalPages() const
    {
        return pagesPerChannel() * channels;
    }

    std::uint64_t
    totalBytes() const
    {
        return totalPages() * pageBytes;
    }

    std::uint32_t
    totalChips() const
    {
        return channels * chipsPerChannel;
    }

    /** Seconds to move `bytes` over one channel bus. */
    double
    channelTransferTime(std::uint64_t bytes) const
    {
        return static_cast<double>(bytes) / channelBandwidth;
    }

    /** Aggregate internal bandwidth across all channel buses. */
    double
    internalBandwidth() const
    {
        return channelBandwidth * channels;
    }

    /** Validate the geometry; fatal() when malformed. */
    void validate() const;
};

} // namespace deepstore::ssd

#endif // DEEPSTORE_SSD_FLASH_PARAMS_H
