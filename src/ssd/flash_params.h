/**
 * @file
 * Flash and SSD geometry/timing parameters (the SSD-Sim config block).
 *
 * Defaults follow the paper's evaluation setup (§6.1): 53 us flash
 * array read latency, 32 channels, 4 chips per channel, 8 planes per
 * chip, 512 blocks per plane, 128 pages per block, 16 KB pages, and
 * 800 MB/s per-channel bus bandwidth.
 */

#ifndef DEEPSTORE_SSD_FLASH_PARAMS_H
#define DEEPSTORE_SSD_FLASH_PARAMS_H

#include <cstdint>

#include "common/fault_injector.h"
#include "common/units.h"

namespace deepstore::ssd {

/**
 * Flash wear / lifecycle model (paper §4.5: the runtime owns striping
 * and metadata precisely so the device can survive media decay).
 *
 * When enabled, every physical superblock carries a raw bit error
 * rate (RBER) that the FTL derives *deterministically* from its
 * lifecycle counters — erase cycles (wear), accumulated reads since
 * the last program (read disturb), data age (retention), and observed
 * error history. The per-page uncorrectable probability handed to the
 * flash controller is that RBER, so media decay replaces the flat
 * `FaultConfig::uncorrectableReadProbability` as the default fault
 * model. Crossing `relocateRberThreshold` schedules a background
 * relocation of the superblock's valid pages (real flash commands,
 * contending with scans); crossing `retireRberThreshold` — or
 * exhausting `maxEraseCount` — retires the block for good, and
 * placement routes new scan plans around it.
 *
 * All coefficients default to zero and `enabled` to false, so a
 * default-constructed config leaves the datapath tick-identical to a
 * tree without the lifecycle subsystem.
 */
struct WearConfig
{
    /** Master switch; false = no RBER, no relocation, no retirement. */
    bool enabled = false;

    // RBER = clamp01(base + perErase*erases + perRead*reads
    //                + perSecond*dataAge + perUncorrectable*errors
    //                + perRetriedRead*retries)
    double baseRber = 0.0;
    double rberPerErase = 0.0;         ///< wear-out term
    double rberPerRead = 0.0;          ///< read-disturb term
    double rberPerSecond = 0.0;        ///< retention term (data age)
    double rberPerUncorrectable = 0.0; ///< grown-defect feedback
    double rberPerRetriedRead = 0.0;   ///< marginal-cell feedback

    /** Operating temperature. Retention loss is thermally activated,
     *  so the `rberPerSecond` term is scaled by an Arrhenius-style
     *  factor exp((Ea/kB) * (1/T0 - 1/T)) with T0 = 298.15 K (25 C)
     *  and an activation energy of ~1.1 eV (JEDEC-style charge
     *  de-trapping). Exactly 1.0 at the default 25 C, so existing
     *  schedules replay bit-identical. */
    double tempCelsius = 25.0;

    /** RBER above which the superblock's valid pages are relocated
     *  to a fresh superblock (background GC). 1.0 disables. */
    double relocateRberThreshold = 1.0;
    /** RBER above which the superblock is retired after relocation
     *  instead of being erased and reused. 1.0 disables. */
    double retireRberThreshold = 1.0;
    /** Erase-cycle endurance budget: a superblock erased this many
     *  times is retired on its next erase. 0 disables. */
    std::uint64_t maxEraseCount = 0;

    /** Pages copied per relocation burst (bounds how much a
     *  background relocation can backlog the channel buses). */
    std::uint32_t relocationBatchPages = 32;
};

/** Static SSD configuration. */
struct FlashParams
{
    std::uint32_t channels = 32;
    std::uint32_t chipsPerChannel = 4;
    std::uint32_t planesPerChip = 8;
    std::uint32_t blocksPerPlane = 512;
    std::uint32_t pagesPerBlock = 128;
    std::uint64_t pageBytes = 16 * KiB;

    /** Flash array read latency (cell array -> page buffer). */
    double readLatency = 53e-6;
    /** Program (write) latency (page buffer -> cell array). */
    double programLatency = 500e-6;
    /** Block erase latency. */
    double eraseLatency = 3.5e-3;

    /** Per-channel bus bandwidth (ONFI-class, bytes/s). */
    double channelBandwidth = 800.0 * MB;

    /** Host interface (PCIe/NVMe) bandwidth, bytes/s (§6.1: 3.2 GB/s
     *  measured external bandwidth of the Intel DC P4500). */
    double externalBandwidth = 3.2 * GB;

    /** SSD DRAM bandwidth shared by controller + accelerators. */
    double dramBandwidth = 20.0 * GB;

    /** Embedded-CPU overhead to parse/dispatch one I/O command. */
    double commandOverhead = 2e-6;

    // ---- failure injection -------------------------------------
    // Real NAND occasionally needs read retries (charge drift, read
    // disturb). The controller models them deterministically from a
    // hash of the page address so runs stay reproducible.

    /** Probability that a page read needs a retry (0 disables). */
    double readRetryProbability = 0.0;

    /** Extra array-read latencies paid by a retried read. */
    double readRetryPenalty = 3.0;

    /**
     * Deterministic fault schedule (common/fault_injector.h):
     * uncorrectable page reads, page blacklists, transient
     * plane/channel stalls, and accelerator-unit failures. The
     * default schedule injects nothing, keeping the datapath
     * tick-identical to a fault-free build.
     */
    FaultConfig faults;

    /** Flash lifecycle (wear / retention / read disturb) model; the
     *  default config disables it entirely. */
    WearConfig wear;

    // ---- derived quantities -------------------------------------

    std::uint64_t
    pagesPerPlane() const
    {
        return static_cast<std::uint64_t>(blocksPerPlane) * pagesPerBlock;
    }

    std::uint64_t
    pagesPerChip() const
    {
        return pagesPerPlane() * planesPerChip;
    }

    std::uint64_t
    pagesPerChannel() const
    {
        return pagesPerChip() * chipsPerChannel;
    }

    std::uint64_t
    totalPages() const
    {
        return pagesPerChannel() * channels;
    }

    std::uint64_t
    totalBytes() const
    {
        return totalPages() * pageBytes;
    }

    std::uint32_t
    totalChips() const
    {
        return channels * chipsPerChannel;
    }

    /** Seconds to move `bytes` over one channel bus. */
    double
    channelTransferTime(std::uint64_t bytes) const
    {
        return static_cast<double>(bytes) / channelBandwidth;
    }

    /** Aggregate internal bandwidth across all channel buses. */
    double
    internalBandwidth() const
    {
        return channelBandwidth * channels;
    }

    /** Validate the geometry; fatal() when malformed. */
    void validate() const;
};

} // namespace deepstore::ssd

#endif // DEEPSTORE_SSD_FLASH_PARAMS_H
