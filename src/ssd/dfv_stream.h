/**
 * @file
 * DfvStreamService: the FLASH_DFV prefetch engine shared by every
 * in-storage accelerator scan (paper Fig. 5, §4.4).
 *
 * A DfvStream turns a *physical* scan plan — an ordered run of
 * PageAddress entries resolved through the FTL/striping tables — into
 * real FlashCommand reads against the per-channel FlashControllers,
 * i.e. the same controllers that serve regular host I/O. Scan traffic
 * and host traffic therefore contend for the same planes and channel
 * buses, which is the first-order cost of near-data search that the
 * old analytic-only scan path could not express.
 *
 * Queue model: the accelerator controller owns a bounded FLASH_DFV
 * queue of `queueDepthPages` page slots and refills it in bursts
 * (§4.4): a burst of up to `queueDepthPages` reads is issued, pages
 * are delivered as the controller completes them, and the next burst
 * is issued only once every outstanding page has been consumed by all
 * subscribers. Each burst therefore exposes one flash array-read
 * latency that pipelining cannot hide — exactly the
 * `readLatency * pages_per_feature / depth` residual the closed-form
 * DeepStoreModel charges (Fig. 9), which is what keeps the live scan
 * path within tolerance of the analytic prediction.
 *
 * Within a burst, reads that target the same controller are issued
 * `perChannelIssueInterval` ticks apart (the steady-state page
 * interval of that datapath) so plane-level pipelining matches the
 * closed-form channel rate; reads on different controllers issue in
 * parallel (the SSD-level accelerator streams from every channel at
 * once).
 *
 * Read-once-broadcast: one stream serves any number of co-resident
 * same-database scans. The owner reports the *group minimum* consumed
 * page via consumedThrough(); the controller reads each page exactly
 * once and broadcasts it into every subscriber's FLASH_DFV queue.
 */

#ifndef DEEPSTORE_SSD_DFV_STREAM_H
#define DEEPSTORE_SSD_DFV_STREAM_H

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <vector>

#include "common/stats.h"
#include "sim/event_queue.h"
#include "ssd/flash_controller.h"

namespace deepstore::ssd {

/** Physical scan plan of one accelerator's database stripe. */
struct DfvPlan
{
    /** Page reads in scan order (resolved physical addresses; an
     *  address may repeat — the chip-level controller re-reads a page
     *  once per lockstep slot, §4.5). */
    std::vector<PageAddress> pages;

    /** Bytes moved over the channel bus per page (partial-page ONFI
     *  transfer of the useful payload). 0 means the accelerator
     *  consumes straight from the plane page buffer without touching
     *  the shared bus (the chip-level placement, Fig. 3). */
    std::uint64_t transferBytesPerPage = 0;

    /** FLASH_DFV queue capacity in page slots (burst size). */
    std::uint32_t queueDepthPages = 32;

    /** Stagger between two reads issued to the *same* controller
     *  within one burst (steady-state page interval). */
    Tick perChannelIssueInterval = 0;

    // ---- fault handling ------------------------------------------

    /** Reissues of an uncorrectable page before it is abandoned
     *  (each reissue re-rolls the deterministic fault decision with
     *  attempt+1). */
    std::uint32_t maxPageRetries = 2;

    /** Backoff before the first reissue; doubles per attempt
     *  (exponential backoff in simulated time). */
    double pageRetryBackoffSeconds = 20e-6;
};

/**
 * One live FLASH_DFV page stream (see file comment). Obtained from a
 * DfvStreamService; the pointer stays valid until close().
 */
class DfvStream
{
  public:
    std::uint64_t pagesTotal() const { return plan_.pages.size(); }

    /** Contiguous prefix of the plan that has been delivered.
     *  Permanently failed pages count as delivered (the scan skips
     *  them; the loss is tracked separately), so a bad page can
     *  never stall the burst barrier. */
    std::uint64_t pagesDelivered() const { return deliveredPrefix_; }

    bool done() const { return deliveredPrefix_ == pagesTotal(); }

    /** Pages abandoned as uncorrectable after the retry budget. */
    std::uint64_t pagesFailed() const { return failedPages_.size(); }

    /** Failed pages among the first `pages` plan entries. */
    std::uint64_t failedThrough(std::uint64_t pages) const;

    /**
     * Copy of the plan slice [from, to) with the plan's scalar knobs
     * (transfer bytes, depth, interval, retry budget) — the remnant
     * plan the scheduler re-stripes onto a sibling unit when this
     * stream's accelerator dies mid-scan.
     */
    DfvPlan subplan(std::uint64_t from, std::uint64_t to) const;

    /**
     * Report that every subscriber has consumed the first `pages`
     * pages (monotonic; the owner passes the group minimum). Freeing
     * the whole outstanding burst unblocks the next one.
     */
    void consumedThrough(std::uint64_t pages);

    /** Invoked every time the delivered prefix advances. */
    void onDelivered(std::function<void()> cb)
    {
        onDelivered_ = std::move(cb);
    }

    /**
     * Estimated completion tick of the next undelivered page, asking
     * the owning controller's estimateReadCompletion() — the
     * scheduler's Striped-stage load estimate. 0 when the stream is
     * done.
     */
    Tick nextDeliveryEstimate() const;

    std::uint64_t burstsIssued() const { return bursts_; }

    /** FLASH_DFV queue capacity in page slots (burst size). The
     *  consumer sizes its staging FIFO to match. */
    std::uint32_t queueDepthPages() const
    {
        return plan_.queueDepthPages;
    }

    /**
     * Ticks the stream has spent fully delivered but blocked on
     * consumption: the whole outstanding burst sat in the FLASH_DFV
     * queue waiting for compute to drain it while more pages were
     * pending. This is the backpressure the bounded queue exerts on
     * flash delivery when compute (not flash) is the bottleneck.
     */
    Tick backpressureTicks() const { return backpressureTicks_; }

  private:
    friend class DfvStreamService;

    DfvStream(sim::EventQueue &events, DfvPlan plan,
              std::function<FlashController &(std::uint32_t)> route,
              StatGroup &stats);

    void maybeIssueBurst();
    void issuePage(std::uint64_t index, std::uint32_t attempt);
    void pageDelivered(std::uint64_t index, bool ok);
    void pageUncorrectable(std::uint64_t index, std::uint32_t attempt);

    sim::EventQueue &events_;
    DfvPlan plan_;
    std::function<FlashController &(std::uint32_t)> route_;
    StatGroup &stats_;

    std::uint64_t issued_ = 0;
    std::uint64_t deliveredPrefix_ = 0;
    std::uint64_t consumed_ = 0;
    std::uint64_t bursts_ = 0;
    std::vector<bool> delivered_;
    /** Plan indices abandoned as uncorrectable, kept sorted (tiny:
     *  failures are rare by construction). */
    std::vector<std::uint64_t> failedPages_;
    /** In-flight retry attempt per plan index (sparse). */
    std::map<std::uint64_t, std::uint32_t> attempts_;
    std::function<void()> onDelivered_;
    bool closed_ = false;

    /** Backpressure bookkeeping (see backpressureTicks()). */
    bool blocked_ = false;
    Tick blockedSince_ = 0;
    Tick backpressureTicks_ = 0;
};

/**
 * Factory/owner of DFV streams over a set of flash controllers — the
 * *same* controllers that serve hostRead/hostWrite, so scans and host
 * I/O observably contend.
 */
class DfvStreamService
{
  public:
    using Router = std::function<FlashController &(std::uint32_t)>;

    /**
     * @param route maps a channel id to its FlashController (the
     * SSD's controller array, or a single-controller shim for
     * standalone pipeline runs).
     */
    DfvStreamService(sim::EventQueue &events, Router route,
                     StatGroup &stats);

    /** Open a stream and issue its first burst. */
    DfvStream &open(DfvPlan plan);

    /** Close a finished (or abandoned) stream. */
    void close(DfvStream &stream);

    /** Streams currently open. */
    std::size_t active() const { return active_; }

  private:
    sim::EventQueue &events_;
    Router route_;
    StatGroup &stats_;
    std::vector<std::unique_ptr<DfvStream>> streams_;
    std::size_t active_ = 0;
};

} // namespace deepstore::ssd

#endif // DEEPSTORE_SSD_DFV_STREAM_H
