#include "ssd/ftl.h"

#include <algorithm>
#include <cmath>

#include "common/logging.h"

namespace deepstore::ssd {

namespace {

/**
 * Arrhenius acceleration of retention loss at temperature `celsius`
 * relative to the 25 C reference: exp((Ea/kB) * (1/T0 - 1/T)) with
 * Ea = 1.1 eV (JEDEC-style charge de-trapping) and T0 = 298.15 K.
 * Exactly 1.0 at 25 C so default schedules replay bit-identical.
 */
double
retentionTempFactor(double celsius)
{
    if (celsius == 25.0)
        return 1.0;
    constexpr double kEaOverKb = 1.1 / 8.617333262e-5; // Ea/kB in K
    constexpr double kT0 = 298.15;                     // 25 C in K
    double t = celsius + 273.15;
    if (t <= 0.0)
        fatal("WearConfig::tempCelsius below absolute zero");
    return std::exp(kEaOverKb * (1.0 / kT0 - 1.0 / t));
}

} // namespace

Ftl::Ftl(const FlashParams &params, StatGroup &stats)
    : params_(params), stats_(stats)
{
    params_.validate();
    superPages_ = static_cast<std::uint64_t>(params_.channels) *
                  params_.chipsPerChannel * params_.planesPerChip *
                  params_.pagesPerBlock;
    superCount_ = params_.blocksPerPlane;
    map_.assign(superCount_, kUnmapped);
    freeSb_.assign(superCount_, true);
    eraseCount_.assign(superCount_, 0);
    valid_.assign(params_.totalPages(), false);
    validCount_.assign(superCount_, 0);
    physToLogical_.assign(superCount_, kUnmapped);
    readCount_.assign(superCount_, 0);
    programTick_.assign(superCount_, 0);
    errorCount_.assign(superCount_, 0);
    retriedCount_.assign(superCount_, 0);
    retired_.assign(superCount_, false);
    relocating_.assign(superCount_, false);
}

bool
Ftl::isMapped(std::uint64_t lpn) const
{
    if (lpn >= valid_.size())
        return false;
    std::uint64_t sb = lpn / superPages_;
    return map_[sb] != kUnmapped && valid_[lpn];
}

std::uint64_t
Ftl::translate(std::uint64_t lpn) const
{
    if (lpn >= valid_.size())
        fatal("LPN %llu beyond device capacity",
              static_cast<unsigned long long>(lpn));
    std::uint64_t sb = lpn / superPages_;
    std::uint64_t off = lpn % superPages_;
    if (map_[sb] == kUnmapped || !valid_[lpn])
        fatal("read of unmapped LPN %llu",
              static_cast<unsigned long long>(lpn));
    return static_cast<std::uint64_t>(map_[sb]) * superPages_ + off;
}

std::uint32_t
Ftl::allocateSuperblock()
{
    // Wear-leveling allocator: among free superblocks, pick the least
    // erased one.
    std::uint32_t best = kUnmapped;
    for (std::uint32_t i = 0; i < superCount_; ++i) {
        if (!freeSb_[i])
            continue;
        if (best == kUnmapped || eraseCount_[i] < eraseCount_[best])
            best = i;
    }
    if (best == kUnmapped)
        fatal("SSD out of free superblocks (device full)");
    freeSb_[best] = false;
    return best;
}

void
Ftl::eraseSuperblock(std::uint32_t phys)
{
    DS_ASSERT(phys < superCount_);
    ++eraseCount_[phys];
    // A program/erase cycle resets the per-program decay state.
    physToLogical_[phys] = kUnmapped;
    readCount_[phys] = 0;
    programTick_[phys] = 0;
    errorCount_[phys] = 0;
    retriedCount_[phys] = 0;
    stats_.get("ftl.superblockErases") += 1;
    if (params_.wear.enabled && params_.wear.maxEraseCount > 0 &&
        eraseCount_[phys] >= params_.wear.maxEraseCount) {
        // Endurance budget exhausted: this erase was the block's
        // last — it leaves service instead of rejoining the pool.
        freeSb_[phys] = false;
        retireSuperblock(phys);
        return;
    }
    freeSb_[phys] = true;
}

WriteResult
Ftl::write(std::uint64_t lpn, Tick now)
{
    if (lpn >= valid_.size())
        fatal("write to LPN %llu beyond device capacity",
              static_cast<unsigned long long>(lpn));
    WriteResult res;
    std::uint64_t sb = lpn / superPages_;
    std::uint64_t off = lpn % superPages_;

    if (map_[sb] == kUnmapped) {
        map_[sb] = allocateSuperblock();
        physToLogical_[map_[sb]] = static_cast<std::uint32_t>(sb);
    }

    if (valid_[lpn]) {
        // In-place overwrite: block-level mapping forces a
        // read-modify-write migration to a fresh superblock.
        std::uint32_t old_phys = map_[sb];
        std::uint32_t new_phys = allocateSuperblock();
        res.migratedPages = validCount_[sb] - 1; // all but the page
        res.erasedBlocks = 1;
        stats_.get("ftl.migratedPages") +=
            static_cast<double>(res.migratedPages);
        // A relocation of the old physical block (if any) is now
        // stale; finishRelocation() will notice the map moved.
        relocating_[old_phys] = false;
        eraseSuperblock(old_phys);
        map_[sb] = new_phys;
        physToLogical_[new_phys] = static_cast<std::uint32_t>(sb);
        ++mappingEpoch_;
    } else {
        valid_[lpn] = true;
        ++validCount_[sb];
    }

    programTick_[map_[sb]] = now;
    stats_.get("ftl.pageWrites") += 1;
    res.ppn = static_cast<std::uint64_t>(map_[sb]) * superPages_ + off;
    return res;
}

std::vector<std::uint32_t>
Ftl::trim(std::uint64_t lpn_start, std::uint64_t count)
{
    std::vector<std::uint32_t> erased;
    for (std::uint64_t i = 0; i < count; ++i) {
        std::uint64_t lpn = lpn_start + i;
        if (lpn >= valid_.size())
            break;
        if (!valid_[lpn])
            continue;
        valid_[lpn] = false;
        std::uint64_t sb = lpn / superPages_;
        DS_ASSERT(validCount_[sb] > 0);
        if (--validCount_[sb] == 0 && map_[sb] != kUnmapped) {
            erased.push_back(map_[sb]);
            relocating_[map_[sb]] = false; // any copy is now moot
            eraseSuperblock(map_[sb]);
            map_[sb] = kUnmapped;
            ++mappingEpoch_;
        }
    }
    return erased;
}

std::uint32_t
Ftl::freeSuperblocks() const
{
    return static_cast<std::uint32_t>(
        std::count(freeSb_.begin(), freeSb_.end(), true));
}

std::uint64_t
Ftl::totalErases() const
{
    std::uint64_t total = 0;
    for (auto e : eraseCount_)
        total += e;
    return total;
}

std::uint64_t
Ftl::eraseSpread() const
{
    // Retired superblocks stop being erased; including them would
    // make the spread grow without bound as the drive ages.
    bool any = false;
    std::uint64_t mn = 0, mx = 0;
    for (std::uint32_t i = 0; i < superCount_; ++i) {
        if (retired_[i])
            continue;
        if (!any) {
            mn = mx = eraseCount_[i];
            any = true;
        } else {
            mn = std::min(mn, eraseCount_[i]);
            mx = std::max(mx, eraseCount_[i]);
        }
    }
    return any ? mx - mn : 0;
}

// ---- lifecycle model -------------------------------------------

void
Ftl::noteRead(std::uint64_t ppn)
{
    ++readCount_[ppn / superPages_];
}

void
Ftl::noteUncorrectable(std::uint64_t ppn)
{
    ++errorCount_[ppn / superPages_];
}

void
Ftl::noteRetried(std::uint64_t ppn)
{
    ++retriedCount_[ppn / superPages_];
}

double
Ftl::uncorrectableProbability(std::uint64_t ppn, Tick now) const
{
    const WearConfig &w = params_.wear;
    if (!w.enabled)
        return 0.0;
    std::uint64_t phys = ppn / superPages_;
    DS_ASSERT(phys < superCount_);
    Tick age =
        now > programTick_[phys] ? now - programTick_[phys] : 0;
    double rber =
        w.baseRber +
        w.rberPerErase * static_cast<double>(eraseCount_[phys]) +
        w.rberPerRead * static_cast<double>(readCount_[phys]) +
        w.rberPerSecond * ticksToSeconds(age) *
            retentionTempFactor(w.tempCelsius) +
        w.rberPerUncorrectable *
            static_cast<double>(errorCount_[phys]) +
        w.rberPerRetriedRead *
            static_cast<double>(retriedCount_[phys]);
    if (rber < 0.0)
        return 0.0;
    return rber > 1.0 ? 1.0 : rber;
}

LifecycleAction
Ftl::lifecycleAction(std::uint32_t phys, Tick now) const
{
    const WearConfig &w = params_.wear;
    if (!w.enabled || phys >= superCount_)
        return LifecycleAction::None;
    if (retired_[phys] || relocating_[phys] ||
        physToLogical_[phys] == kUnmapped)
        return LifecycleAction::None;
    double rber = uncorrectableProbability(
        static_cast<std::uint64_t>(phys) * superPages_, now);
    if (w.retireRberThreshold < 1.0 &&
        rber >= w.retireRberThreshold)
        return LifecycleAction::Retire;
    if (w.relocateRberThreshold < 1.0 &&
        rber >= w.relocateRberThreshold)
        return LifecycleAction::Relocate;
    return LifecycleAction::None;
}

std::optional<RelocationJob>
Ftl::beginRelocation(std::uint32_t phys)
{
    if (phys >= superCount_ || retired_[phys] || relocating_[phys] ||
        physToLogical_[phys] == kUnmapped)
        return std::nullopt;
    if (freeSuperblocks() == 0)
        return std::nullopt; // nowhere to move it
    RelocationJob job;
    job.logicalSb = physToLogical_[phys];
    job.oldPhys = phys;
    job.newPhys = allocateSuperblock();
    for (std::uint64_t off = 0; off < superPages_; ++off) {
        std::uint64_t lpn =
            static_cast<std::uint64_t>(job.logicalSb) * superPages_ +
            off;
        if (valid_[lpn])
            job.validOffsets.push_back(off);
    }
    relocating_[phys] = true;
    return job;
}

bool
Ftl::finishRelocation(const RelocationJob &job, bool retire_old,
                      Tick now)
{
    relocating_[job.oldPhys] = false;
    if (map_[job.logicalSb] != job.oldPhys) {
        // The mapping moved underneath the copy (overwrite migration
        // or trim): abandon — erase the half-written destination
        // back into the pool.
        eraseSuperblock(job.newPhys);
        return false;
    }
    map_[job.logicalSb] = job.newPhys;
    physToLogical_[job.newPhys] = job.logicalSb;
    physToLogical_[job.oldPhys] = kUnmapped;
    programTick_[job.newPhys] = now;
    ++mappingEpoch_;
    stats_.get("ftl.relocations") += 1;
    stats_.get("ftl.relocatedPages") +=
        static_cast<double>(job.validOffsets.size());
    if (retire_old) {
        freeSb_[job.oldPhys] = false;
        retireSuperblock(job.oldPhys);
    } else {
        eraseSuperblock(job.oldPhys);
    }
    return true;
}

void
Ftl::abortRelocation(const RelocationJob &job)
{
    // Power loss mid-copy: the source mapping never changed, so the
    // device stays consistent; the destination (possibly partially
    // programmed) simply returns to the pool — it will be erased by
    // allocateSuperblock's next consumer via the normal write path.
    relocating_[job.oldPhys] = false;
    physToLogical_[job.newPhys] = kUnmapped;
    freeSb_[job.newPhys] = true;
}

void
Ftl::retireSuperblock(std::uint32_t phys)
{
    DS_ASSERT(phys < superCount_);
    if (retired_[phys])
        return;
    DS_ASSERT(physToLogical_[phys] == kUnmapped);
    DS_ASSERT(!freeSb_[phys]);
    retired_[phys] = true;
    relocating_[phys] = false;
    stats_.get("ftl.retiredSuperblocks") += 1;
}

std::uint64_t
Ftl::eraseCount(std::uint32_t phys) const
{
    DS_ASSERT(phys < superCount_);
    return eraseCount_[phys];
}

std::uint64_t
Ftl::readCount(std::uint32_t phys) const
{
    DS_ASSERT(phys < superCount_);
    return readCount_[phys];
}

bool
Ftl::retired(std::uint32_t phys) const
{
    DS_ASSERT(phys < superCount_);
    return retired_[phys];
}

std::uint32_t
Ftl::retiredSuperblocks() const
{
    return static_cast<std::uint32_t>(
        std::count(retired_.begin(), retired_.end(), true));
}

std::uint32_t
Ftl::mappedPhysical(std::uint32_t logical) const
{
    DS_ASSERT(logical < superCount_);
    return map_[logical];
}

} // namespace deepstore::ssd
