#include "ssd/ftl.h"

#include <algorithm>

#include "common/logging.h"

namespace deepstore::ssd {

Ftl::Ftl(const FlashParams &params, StatGroup &stats)
    : params_(params), stats_(stats)
{
    params_.validate();
    superPages_ = static_cast<std::uint64_t>(params_.channels) *
                  params_.chipsPerChannel * params_.planesPerChip *
                  params_.pagesPerBlock;
    superCount_ = params_.blocksPerPlane;
    map_.assign(superCount_, kUnmapped);
    freeSb_.assign(superCount_, true);
    eraseCount_.assign(superCount_, 0);
    valid_.assign(params_.totalPages(), false);
    validCount_.assign(superCount_, 0);
}

bool
Ftl::isMapped(std::uint64_t lpn) const
{
    if (lpn >= valid_.size())
        return false;
    std::uint64_t sb = lpn / superPages_;
    return map_[sb] != kUnmapped && valid_[lpn];
}

std::uint64_t
Ftl::translate(std::uint64_t lpn) const
{
    if (lpn >= valid_.size())
        fatal("LPN %llu beyond device capacity",
              static_cast<unsigned long long>(lpn));
    std::uint64_t sb = lpn / superPages_;
    std::uint64_t off = lpn % superPages_;
    if (map_[sb] == kUnmapped || !valid_[lpn])
        fatal("read of unmapped LPN %llu",
              static_cast<unsigned long long>(lpn));
    return static_cast<std::uint64_t>(map_[sb]) * superPages_ + off;
}

std::uint32_t
Ftl::allocateSuperblock()
{
    // Wear-leveling allocator: among free superblocks, pick the least
    // erased one.
    std::uint32_t best = kUnmapped;
    for (std::uint32_t i = 0; i < superCount_; ++i) {
        if (!freeSb_[i])
            continue;
        if (best == kUnmapped || eraseCount_[i] < eraseCount_[best])
            best = i;
    }
    if (best == kUnmapped)
        fatal("SSD out of free superblocks (device full)");
    freeSb_[best] = false;
    return best;
}

void
Ftl::eraseSuperblock(std::uint32_t phys)
{
    DS_ASSERT(phys < superCount_);
    ++eraseCount_[phys];
    freeSb_[phys] = true;
    stats_.get("ftl.superblockErases") += 1;
}

WriteResult
Ftl::write(std::uint64_t lpn)
{
    if (lpn >= valid_.size())
        fatal("write to LPN %llu beyond device capacity",
              static_cast<unsigned long long>(lpn));
    WriteResult res;
    std::uint64_t sb = lpn / superPages_;
    std::uint64_t off = lpn % superPages_;

    if (map_[sb] == kUnmapped)
        map_[sb] = allocateSuperblock();

    if (valid_[lpn]) {
        // In-place overwrite: block-level mapping forces a
        // read-modify-write migration to a fresh superblock.
        std::uint32_t old_phys = map_[sb];
        std::uint32_t new_phys = allocateSuperblock();
        res.migratedPages = validCount_[sb] - 1; // all but the page
        res.erasedBlocks = 1;
        stats_.get("ftl.migratedPages") +=
            static_cast<double>(res.migratedPages);
        eraseSuperblock(old_phys);
        map_[sb] = new_phys;
    } else {
        valid_[lpn] = true;
        ++validCount_[sb];
    }

    stats_.get("ftl.pageWrites") += 1;
    res.ppn = static_cast<std::uint64_t>(map_[sb]) * superPages_ + off;
    return res;
}

std::vector<std::uint32_t>
Ftl::trim(std::uint64_t lpn_start, std::uint64_t count)
{
    std::vector<std::uint32_t> erased;
    for (std::uint64_t i = 0; i < count; ++i) {
        std::uint64_t lpn = lpn_start + i;
        if (lpn >= valid_.size())
            break;
        if (!valid_[lpn])
            continue;
        valid_[lpn] = false;
        std::uint64_t sb = lpn / superPages_;
        DS_ASSERT(validCount_[sb] > 0);
        if (--validCount_[sb] == 0 && map_[sb] != kUnmapped) {
            erased.push_back(map_[sb]);
            eraseSuperblock(map_[sb]);
            map_[sb] = kUnmapped;
        }
    }
    return erased;
}

std::uint32_t
Ftl::freeSuperblocks() const
{
    return static_cast<std::uint32_t>(
        std::count(freeSb_.begin(), freeSb_.end(), true));
}

std::uint64_t
Ftl::totalErases() const
{
    std::uint64_t total = 0;
    for (auto e : eraseCount_)
        total += e;
    return total;
}

std::uint64_t
Ftl::eraseSpread() const
{
    auto [mn, mx] =
        std::minmax_element(eraseCount_.begin(), eraseCount_.end());
    return *mx - *mn;
}

} // namespace deepstore::ssd
