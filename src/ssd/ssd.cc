#include "ssd/ssd.h"

#include <algorithm>

#include "common/logging.h"

namespace deepstore::ssd {

Ssd::Ssd(sim::EventQueue &events, FlashParams params)
    : events_(events), params_(params), geometry_(params_),
      stats_("ssd"), ftl_(params_, stats_),
      dram_("ssd.dram", params_.dramBandwidth)
{
    params_.validate();
    controllers_.reserve(params_.channels);
    for (std::uint32_t c = 0; c < params_.channels; ++c) {
        controllers_.push_back(std::make_unique<FlashController>(
            events_, params_, c, stats_));
    }
    if (params_.wear.enabled) {
        // Couple the controllers to the FTL lifecycle: reads roll
        // their uncorrectable probability against the block's RBER
        // (identically for issue and estimate), and issued reads
        // feed the decay counters / threshold checks back.
        for (auto &c : controllers_) {
            c->setWearProbe([this](const PageAddress &a) {
                return ftl_.uncorrectableProbability(
                    geometry_.encode(a), events_.now());
            });
            c->setReadObserver(
                [this](const PageAddress &a, FlashStatus st) {
                    onFlashRead(a, st);
                });
        }
    }
}

FlashController &
Ssd::controller(std::uint32_t channel)
{
    if (channel >= controllers_.size())
        panic("channel %u out of range", channel);
    return *controllers_[channel];
}

Tick
Ssd::nocWaitTicks() const
{
    Tick total = 0;
    for (const auto &c : controllers_)
        total += c->bus().waitTicks();
    return total;
}

void
Ssd::syncLinkStats()
{
    stats_.get("noc.waitTicks")
        .set(static_cast<double>(nocWaitTicks()));
    stats_.get("dram.waitTicks")
        .set(static_cast<double>(dram_.waitTicks()));
    stats_.get("dram.busyTicks")
        .set(static_cast<double>(dram_.busyTicks()));
}

Tick
Ssd::hostDispatchTick() const
{
    // Regular I/O gets a busy signal while the accelerators own the
    // read path (§4.5); the command re-dispatches after the window.
    Tick dispatch =
        events_.now() + secondsToTicks(params_.commandOverhead);
    return std::max(dispatch, accelBusyUntil_);
}

void
Ssd::setAcceleratorWindow(Tick until)
{
    accelBusyUntil_ = std::max(accelBusyUntil_, until);
}

void
Ssd::hostWrite(std::uint64_t lpn_start, std::uint64_t count,
               Completion on_complete)
{
    DS_ASSERT(count > 0);
    stats_.get("host.writeCommands") += 1;
    auto remaining = std::make_shared<std::uint64_t>(count);
    auto last = std::make_shared<Tick>(0);

    events_.schedule(hostDispatchTick(), [this, lpn_start, count,
                                          remaining, last,
                                          cb = std::move(
                                              on_complete)] {
        for (std::uint64_t i = 0; i < count; ++i) {
            std::uint64_t lpn = lpn_start + i;
            WriteResult wr = ftl_.write(lpn, events_.now());
            PageAddress addr = geometry_.decode(wr.ppn);
            FlashCommand cmd;
            cmd.op = FlashOp::Program;
            cmd.addr = addr;
            cmd.transferBytes = params_.pageBytes;
            cmd.onComplete = [remaining, last, cb](Tick t,
                                                   FlashStatus) {
                *last = std::max(*last, t);
                if (--*remaining == 0 && cb)
                    cb(*last);
            };
            controllers_[addr.channel]->issue(std::move(cmd));
        }
    });
}

void
Ssd::hostRead(std::uint64_t lpn_start, std::uint64_t count,
              Completion on_complete)
{
    DS_ASSERT(count > 0);
    stats_.get("host.readCommands") += 1;
    auto remaining = std::make_shared<std::uint64_t>(count);
    auto last = std::make_shared<Tick>(0);

    events_.schedule(hostDispatchTick(), [this, lpn_start, count,
                                          remaining, last,
                                          cb = std::move(
                                              on_complete)] {
        for (std::uint64_t i = 0; i < count; ++i) {
            std::uint64_t lpn = lpn_start + i;
            std::uint64_t ppn = ftl_.translate(lpn);
            PageAddress addr = geometry_.decode(ppn);
            FlashCommand cmd;
            cmd.op = FlashOp::Read;
            cmd.addr = addr;
            cmd.transferBytes = params_.pageBytes;
            cmd.onComplete = [this, remaining, last,
                              cb](Tick t, FlashStatus) {
                // External interface transfer serializes at the
                // PCIe-class bandwidth.
                Tick xfer_start = std::max(t, externalBusyUntil_);
                Tick xfer_done =
                    xfer_start +
                    secondsToTicks(
                        static_cast<double>(params_.pageBytes) /
                        params_.externalBandwidth);
                externalBusyUntil_ = xfer_done;
                stats_.get("host.readBytes") +=
                    static_cast<double>(params_.pageBytes);
                events_.schedule(xfer_done,
                                 [remaining, last, cb, xfer_done] {
                    *last = std::max(*last, xfer_done);
                    if (--*remaining == 0 && cb)
                        cb(*last);
                });
            };
            controllers_[addr.channel]->issue(std::move(cmd));
        }
    });
}

void
Ssd::hostTrim(std::uint64_t lpn_start, std::uint64_t count,
              Completion on_complete)
{
    DS_ASSERT(count > 0);
    stats_.get("host.trimCommands") += 1;
    events_.schedule(hostDispatchTick(), [this, lpn_start, count,
                                          cb = std::move(
                                              on_complete)] {
        auto erased = ftl_.trim(lpn_start, count);
        if (erased.empty()) {
            if (cb)
                cb(events_.now());
            return;
        }
        // Erase the superblock on every plane it spans.
        auto remaining = std::make_shared<std::uint64_t>(
            static_cast<std::uint64_t>(erased.size()) *
            params_.channels * params_.chipsPerChannel *
            params_.planesPerChip);
        auto last = std::make_shared<Tick>(0);
        for (std::uint32_t sb : erased) {
            for (std::uint32_t ch = 0; ch < params_.channels; ++ch) {
                for (std::uint32_t chip = 0;
                     chip < params_.chipsPerChannel; ++chip) {
                    for (std::uint32_t plane = 0;
                         plane < params_.planesPerChip; ++plane) {
                        FlashCommand cmd;
                        cmd.op = FlashOp::Erase;
                        cmd.addr = PageAddress{ch, chip, plane, sb, 0};
                        cmd.onComplete = [remaining, last,
                                          cb](Tick t, FlashStatus) {
                            *last = std::max(*last, t);
                            if (--*remaining == 0 && cb)
                                cb(*last);
                        };
                        controllers_[ch]->issue(std::move(cmd));
                    }
                }
            }
        }
    });
}

void
Ssd::internalRead(std::uint64_t ppn, std::uint64_t bytes,
                  Completion on_complete)
{
    PageAddress addr = geometry_.decode(ppn);
    FlashCommand cmd;
    cmd.op = FlashOp::Read;
    cmd.addr = addr;
    cmd.transferBytes = std::min(bytes, params_.pageBytes);
    cmd.onComplete = [cb = std::move(on_complete)](Tick t,
                                                   FlashStatus) {
        if (cb)
            cb(t);
    };
    stats_.get("internal.reads") += 1;
    controllers_[addr.channel]->issue(std::move(cmd));
}

void
Ssd::scrubRead(std::uint64_t ppn, StatusCompletion on_complete)
{
    PageAddress addr = geometry_.decode(ppn);
    FlashCommand cmd;
    cmd.op = FlashOp::Read;
    cmd.addr = addr;
    cmd.transferBytes = params_.pageBytes;
    cmd.onComplete = [cb = std::move(on_complete)](Tick t,
                                                   FlashStatus st) {
        if (cb)
            cb(t, st);
    };
    stats_.get("scrub.reads") += 1;
    controllers_[addr.channel]->issue(std::move(cmd));
}

PageAddress
Ssd::physicalAddress(std::uint64_t lpn) const
{
    return geometry_.decode(ftl_.translate(lpn));
}

void
Ssd::storePayload(std::uint64_t lpn, std::vector<std::uint8_t> bytes)
{
    if (bytes.size() > params_.pageBytes)
        fatal("payload of %zu bytes exceeds page size", bytes.size());
    payloads_[lpn] = std::move(bytes);
}

const std::vector<std::uint8_t> *
Ssd::payload(std::uint64_t lpn) const
{
    auto it = payloads_.find(lpn);
    return it == payloads_.end() ? nullptr : &it->second;
}

// ---- flash lifecycle (wear -> relocation -> retirement) ---------

void
Ssd::onFlashRead(const PageAddress &addr, FlashStatus status)
{
    std::uint64_t ppn = geometry_.encode(addr);
    ftl_.noteRead(ppn);
    if (status == FlashStatus::RetriedOk)
        ftl_.noteRetried(ppn);
    else if (status == FlashStatus::Uncorrectable)
        ftl_.noteUncorrectable(ppn);

    std::uint32_t phys =
        static_cast<std::uint32_t>(ppn / ftl_.superblockPages());
    LifecycleAction act = ftl_.lifecycleAction(phys, events_.now());
    if (act == LifecycleAction::None)
        return;
    // We are inside a controller's issue(); start the copy on a
    // fresh event. beginRelocation() dedupes concurrent triggers
    // from the same tick batch; the generation guard drops triggers
    // that straddle a power loss.
    const bool retire = act == LifecycleAction::Retire;
    const std::uint64_t gen = powerGen_;
    events_.scheduleAfter(0, [this, phys, retire, gen] {
        if (gen != powerGen_)
            return;
        startRelocation(phys, retire);
    });
}

void
Ssd::startRelocation(std::uint32_t phys, bool retire_old)
{
    auto job = ftl_.beginRelocation(phys);
    if (!job)
        return; // already relocating, retired, unmapped, or full
    auto st = std::make_shared<RelocState>();
    st->job = std::move(*job);
    st->retireOld = retire_old;
    st->gen = powerGen_;
    relocations_.push_back(st);
    relocationBatch(st);
}

void
Ssd::relocationBatch(const std::shared_ptr<RelocState> &st)
{
    if (st->gen != powerGen_)
        return; // power loss aborted this copy
    const std::uint64_t total = st->job.validOffsets.size();
    if (st->next >= total) {
        finishRelocation(st);
        return;
    }
    std::uint64_t batch = std::min<std::uint64_t>(
        std::max<std::uint32_t>(params_.wear.relocationBatchPages, 1),
        total - st->next);
    auto remaining = std::make_shared<std::uint64_t>(batch);
    const std::uint64_t gen = st->gen;
    const std::uint64_t sp = ftl_.superblockPages();
    for (std::uint64_t i = 0; i < batch; ++i) {
        std::uint64_t off = st->job.validOffsets[st->next + i];
        PageAddress src = geometry_.decode(
            static_cast<std::uint64_t>(st->job.oldPhys) * sp + off);
        PageAddress dst = geometry_.decode(
            static_cast<std::uint64_t>(st->job.newPhys) * sp + off);
        // Read the valid page off the decaying block, then program
        // it into the copy — real commands on the shared per-channel
        // controllers, contending with scans and host I/O. (Payloads
        // are keyed by LPN, so the copy is timing-only; a read that
        // comes back Uncorrectable is still copied — ECC heroics on
        // the GC path are not modeled.)
        FlashCommand rd;
        rd.op = FlashOp::Read;
        rd.addr = src;
        rd.transferBytes = params_.pageBytes;
        rd.onComplete = [this, st, remaining, dst,
                         gen](Tick t, FlashStatus) {
            if (gen != powerGen_)
                return;
            // The valid page stages through SSD DRAM on its way to
            // the new block, drawing on the same DRAM channel as
            // accelerator weight streams and QC traffic.
            const Tick staged = dram_.acquire(t, params_.pageBytes);
            events_.schedule(staged, [this, st, remaining, dst, gen] {
                if (gen != powerGen_)
                    return;
                FlashCommand wr;
                wr.op = FlashOp::Program;
                wr.addr = dst;
                wr.transferBytes = params_.pageBytes;
                wr.onComplete = [this, st, remaining,
                                 gen](Tick, FlashStatus) {
                    if (gen != powerGen_)
                        return;
                    if (--*remaining == 0)
                        relocationBatch(st); // next batch (or finish)
                };
                controller(wr.addr.channel).issue(std::move(wr));
            });
        };
        controller(src.channel).issue(std::move(rd));
    }
    st->next += batch;
}

void
Ssd::finishRelocation(const std::shared_ptr<RelocState> &st)
{
    relocations_.erase(
        std::remove(relocations_.begin(), relocations_.end(), st),
        relocations_.end());
    bool committed =
        ftl_.finishRelocation(st->job, st->retireOld, events_.now());
    if (!committed || st->retireOld)
        return; // abandoned, or the source left service for good
    // The source rejoined the free pool: pay the physical erase on
    // every plane it spans (fire-and-forget; the FTL already counted
    // the superblock erase).
    for (std::uint32_t ch = 0; ch < params_.channels; ++ch) {
        for (std::uint32_t chip = 0; chip < params_.chipsPerChannel;
             ++chip) {
            for (std::uint32_t plane = 0;
                 plane < params_.planesPerChip; ++plane) {
                FlashCommand cmd;
                cmd.op = FlashOp::Erase;
                cmd.addr = PageAddress{ch, chip, plane,
                                       st->job.oldPhys, 0};
                controllers_[ch]->issue(std::move(cmd));
            }
        }
    }
}

void
Ssd::powerLoss()
{
    stats_.get("powerLosses") += 1;
    ++powerGen_;
    for (auto &st : relocations_)
        ftl_.abortRelocation(st->job);
    relocations_.clear();
    for (auto &c : controllers_)
        c->powerLoss();
    dram_.reset(events_.now());
    externalBusyUntil_ = events_.now();
    accelBusyUntil_ = 0;
}

} // namespace deepstore::ssd
