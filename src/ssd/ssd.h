/**
 * @file
 * Top-level SSD model: host interface, embedded-CPU command overhead,
 * per-channel flash controllers, FTL, and an optional sparse backing
 * store for page payloads (used by the functional API path; the pure
 * timing benches skip payloads entirely).
 */

#ifndef DEEPSTORE_SSD_SSD_H
#define DEEPSTORE_SSD_SSD_H

#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "common/stats.h"
#include "sim/bandwidth.h"
#include "sim/event_queue.h"
#include "ssd/flash_controller.h"
#include "ssd/ftl.h"
#include "ssd/geometry.h"

namespace deepstore::ssd {

/** Completion callback carrying the completion tick. */
using Completion = std::function<void(Tick)>;

/** An SSD instance bound to an event queue. */
class Ssd
{
  public:
    Ssd(sim::EventQueue &events, FlashParams params);

    const FlashParams &params() const { return params_; }
    const Geometry &geometry() const { return geometry_; }
    Ftl &ftl() { return ftl_; }
    StatGroup &stats() { return stats_; }
    sim::EventQueue &events() { return events_; }

    /**
     * Host-path write of `count` pages starting at LPN `lpn_start`
     * (full-page programs through the FTL). Completion fires when the
     * last program finishes.
     */
    void hostWrite(std::uint64_t lpn_start, std::uint64_t count,
                   Completion on_complete);

    /**
     * Host-path read of `count` pages starting at LPN `lpn_start`:
     * embedded-CPU command overhead, flash array reads and channel
     * transfers (parallel across channels), then the external
     * interface transfer, which serializes at the PCIe-class
     * bandwidth. Completion fires when the last byte reaches the
     * host.
     */
    void hostRead(std::uint64_t lpn_start, std::uint64_t count,
                  Completion on_complete);

    /**
     * Internal read used by in-storage accelerators: goes straight to
     * the channel controller with a partial-page transfer, bypassing
     * the external interface (paper Fig. 5).
     */
    void internalRead(std::uint64_t ppn, std::uint64_t bytes,
                      Completion on_complete);

    /** Completion carrying the tick *and* the ECC verdict (the scrub
     *  path needs to know whether the media gave the page back). */
    using StatusCompletion = std::function<void(Tick, FlashStatus)>;

    /**
     * Verifying read used by the background scrubber: a full-page
     * read straight on the channel controller (no external-interface
     * transfer), reporting the ECC status so the caller can detect
     * latent uncorrectable pages before a query does.
     */
    void scrubRead(std::uint64_t ppn, StatusCompletion on_complete);

    /**
     * Host-path trim of `count` pages starting at `lpn_start`.
     * Fully invalidated superblocks are erased on the affected
     * planes; completion fires when the last erase finishes (or
     * immediately after the command overhead when nothing needed
     * erasing).
     */
    void hostTrim(std::uint64_t lpn_start, std::uint64_t count,
                  Completion on_complete);

    /** Resolve an LPN to its physical page address. */
    PageAddress physicalAddress(std::uint64_t lpn) const;

    /** Attach payload bytes to an LPN (functional path). */
    void storePayload(std::uint64_t lpn,
                      std::vector<std::uint8_t> bytes);

    /** Fetch payload bytes (empty when none stored). */
    const std::vector<std::uint8_t> *payload(std::uint64_t lpn) const;

    /** Controller for a channel (exposed for accelerator wiring). */
    FlashController &controller(std::uint32_t channel);

    /**
     * The device's shared DRAM channel. Accelerator weight streams,
     * QC-probe reads, top-K reduce traffic, and GC relocation staging
     * all reserve time on it, so any two of them physically contend.
     */
    sim::BandwidthLink &dramLink() { return dram_; }

    /** Total channel-bus (NoC) arbitration wait across all channels. */
    Tick nocWaitTicks() const;

    /** Refresh the link-derived stats (noc / dram) before a dump. */
    void syncLinkStats();

    /**
     * Mark the flash read path as owned by the in-storage
     * accelerators until the given tick (§4.5 "Accelerator
     * Placement": the read path is multiplexed between regular reads
     * and the accelerator response; during query operations the
     * controller answers regular I/O with a busy signal). Host reads
     * and writes dispatched inside the window are deferred to its
     * end.
     */
    void setAcceleratorWindow(Tick until);

    /** End of the current accelerator-owned window (0 if none). */
    Tick acceleratorWindowEnd() const { return accelBusyUntil_; }

    /**
     * Whole-device power loss at the current tick: every in-flight
     * background relocation is aborted (the FTL mapping never moved,
     * so the media stays crash-consistent), all plane/bus
     * reservations reset, and stale completion callbacks from the
     * pre-loss epoch are suppressed via a generation counter. The
     * caller (engine) is responsible for killing queries and
     * replaying metadata recovery.
     */
    void powerLoss();

    /** Background relocations currently copying. */
    std::size_t activeRelocations() const
    {
        return relocations_.size();
    }

  private:
    /** One in-flight background relocation (batched page copies). */
    struct RelocState
    {
        RelocationJob job;
        bool retireOld = false;
        /** Next index into job.validOffsets to copy. */
        std::uint64_t next = 0;
        /** Power generation the copy belongs to. */
        std::uint64_t gen = 0;
    };

    /** Read observer: lifecycle accounting + threshold checks. */
    void onFlashRead(const PageAddress &addr, FlashStatus status);
    /** Begin a background relocation of `phys` (dedupes itself). */
    void startRelocation(std::uint32_t phys, bool retire_old);
    /** Copy the next batch of valid pages via real flash commands. */
    void relocationBatch(const std::shared_ptr<RelocState> &st);
    /** Commit (or abandon) a finished copy. */
    void finishRelocation(const std::shared_ptr<RelocState> &st);
    sim::EventQueue &events_;
    FlashParams params_;
    Geometry geometry_;
    StatGroup stats_;
    Ftl ftl_;
    std::vector<std::unique_ptr<FlashController>> controllers_;
    std::unordered_map<std::uint64_t, std::vector<std::uint8_t>>
        payloads_;
    Tick externalBusyUntil_ = 0;
    Tick accelBusyUntil_ = 0;
    /** Shared SSD DRAM channel (see dramLink()). */
    sim::BandwidthLink dram_;

    std::vector<std::shared_ptr<RelocState>> relocations_;
    /** Bumped by powerLoss(); callbacks from older generations are
     *  no-ops (the work they represent died with the capacitors). */
    std::uint64_t powerGen_ = 0;

    /** Dispatch tick for a host command issued now. */
    Tick hostDispatchTick() const;
};

} // namespace deepstore::ssd

#endif // DEEPSTORE_SSD_SSD_H
