#include "ssd/dfv_stream.h"

#include <algorithm>
#include <map>

#include "common/logging.h"

namespace deepstore::ssd {

DfvStream::DfvStream(
    sim::EventQueue &events, DfvPlan plan,
    std::function<FlashController &(std::uint32_t)> route,
    StatGroup &stats)
    : events_(events), plan_(std::move(plan)),
      route_(std::move(route)), stats_(stats),
      delivered_(plan_.pages.size(), false)
{
    if (plan_.pages.empty())
        fatal("a DFV stream needs at least one page");
    if (plan_.queueDepthPages == 0)
        fatal("FLASH_DFV queue depth must be at least 1");
}

void
DfvStream::maybeIssueBurst()
{
    if (closed_ || issued_ == pagesTotal())
        return;
    // Burst barrier (§4.4): the bounded FLASH_DFV queue refills only
    // once every outstanding slot has been drained by the consumers.
    if (consumed_ < issued_)
        return;
    const std::uint64_t n = std::min<std::uint64_t>(
        plan_.queueDepthPages, pagesTotal() - issued_);
    ++bursts_;
    stats_.get("dfv.bursts") += 1;
    // Stagger same-controller reads at the steady-state page
    // interval; different controllers issue in parallel.
    std::map<std::uint32_t, std::uint64_t> perChannel;
    for (std::uint64_t j = 0; j < n; ++j) {
        const std::uint64_t index = issued_ + j;
        const PageAddress &addr = plan_.pages[index];
        const Tick delay =
            perChannel[addr.channel]++ * plan_.perChannelIssueInterval;
        events_.scheduleAfter(delay, [this, index] {
            issuePage(index, 0);
        });
    }
    issued_ += n;
}

void
DfvStream::issuePage(std::uint64_t index, std::uint32_t attempt)
{
    if (closed_)
        return;
    const PageAddress &a = plan_.pages[index];
    FlashCommand cmd;
    cmd.op = FlashOp::Read;
    cmd.addr = a;
    cmd.transferBytes = plan_.transferBytesPerPage;
    cmd.attempt = attempt;
    cmd.onComplete = [this, index, attempt](Tick, FlashStatus st) {
        if (closed_)
            return;
        if (st == FlashStatus::Uncorrectable)
            pageUncorrectable(index, attempt);
        else
            pageDelivered(index, true);
    };
    route_(a.channel).issue(std::move(cmd));
}

void
DfvStream::pageUncorrectable(std::uint64_t index,
                             std::uint32_t attempt)
{
    if (attempt < plan_.maxPageRetries) {
        // Bounded reissue with exponential backoff in simulated
        // time; the injector re-rolls its decision per attempt.
        stats_.get("dfv.pageRetries") += 1;
        attempts_[index] = attempt + 1;
        const Tick backoff =
            secondsToTicks(plan_.pageRetryBackoffSeconds *
                           static_cast<double>(1ULL << attempt));
        events_.scheduleAfter(backoff, [this, index, attempt] {
            if (closed_)
                return;
            issuePage(index, attempt + 1);
        });
        return;
    }
    // Abandon: record the loss, but count the page as delivered so
    // the prefix (and the burst barrier) keeps advancing — a bad
    // page degrades coverage, it never deadlocks the scan.
    stats_.get("dfv.pagesFailed") += 1;
    auto it = std::lower_bound(failedPages_.begin(),
                               failedPages_.end(), index);
    failedPages_.insert(it, index);
    attempts_.erase(index);
    pageDelivered(index, false);
}

void
DfvStream::pageDelivered(std::uint64_t index, bool ok)
{
    if (closed_)
        return;
    DS_ASSERT(index < delivered_.size());
    DS_ASSERT(!delivered_[index]);
    delivered_[index] = true;
    if (ok) {
        stats_.get("dfv.pagesStreamed") += 1;
        stats_.get("dfv.bytesStreamed") +=
            static_cast<double>(plan_.transferBytesPerPage);
    }
    const std::uint64_t before = deliveredPrefix_;
    while (deliveredPrefix_ < delivered_.size() &&
           delivered_[deliveredPrefix_])
        ++deliveredPrefix_;
    if (deliveredPrefix_ != before && onDelivered_)
        onDelivered_();
    // The whole outstanding burst is delivered, the consumer has not
    // drained it, and more pages are waiting behind the barrier: the
    // stream is now blocked on compute, not flash. (The final burst
    // is exempt — after it there is nothing left to hold back.)
    if (!blocked_ && deliveredPrefix_ == issued_ &&
        consumed_ < issued_ && issued_ < pagesTotal()) {
        blocked_ = true;
        blockedSince_ = events_.now();
    }
}

void
DfvStream::consumedThrough(std::uint64_t pages)
{
    if (closed_)
        return;
    if (pages <= consumed_)
        return;
    DS_ASSERT(pages <= issued_);
    consumed_ = pages;
    if (blocked_ && consumed_ >= issued_) {
        const Tick stalled = events_.now() - blockedSince_;
        backpressureTicks_ += stalled;
        stats_.get("dfv.backpressureTicks") +=
            static_cast<double>(stalled);
        blocked_ = false;
    }
    maybeIssueBurst();
}

Tick
DfvStream::nextDeliveryEstimate() const
{
    if (closed_)
        return 0;
    // The next page the consumer is waiting for: first undelivered
    // entry (in flight or still unissued).
    const std::uint64_t next =
        std::min<std::uint64_t>(deliveredPrefix_, pagesTotal());
    if (next == pagesTotal())
        return 0;
    const PageAddress &addr = plan_.pages[next];
    auto attempt_it = attempts_.find(next);
    const std::uint32_t attempt =
        attempt_it == attempts_.end() ? 0 : attempt_it->second;
    return route_(addr.channel)
        .estimateReadCompletion(addr, plan_.transferBytesPerPage,
                                attempt);
}

std::uint64_t
DfvStream::failedThrough(std::uint64_t pages) const
{
    return static_cast<std::uint64_t>(
        std::lower_bound(failedPages_.begin(), failedPages_.end(),
                         pages) -
        failedPages_.begin());
}

DfvPlan
DfvStream::subplan(std::uint64_t from, std::uint64_t to) const
{
    DS_ASSERT(from <= to);
    DS_ASSERT(to <= plan_.pages.size());
    DfvPlan p = plan_; // copies the scalar knobs
    p.pages.assign(plan_.pages.begin() + static_cast<long>(from),
                   plan_.pages.begin() + static_cast<long>(to));
    return p;
}

DfvStreamService::DfvStreamService(sim::EventQueue &events,
                                   Router route, StatGroup &stats)
    : events_(events), route_(std::move(route)), stats_(stats)
{
    DS_ASSERT(route_);
}

DfvStream &
DfvStreamService::open(DfvPlan plan)
{
    streams_.push_back(std::unique_ptr<DfvStream>(
        new DfvStream(events_, std::move(plan), route_, stats_)));
    ++active_;
    stats_.get("dfv.streamsOpened") += 1;
    DfvStream &s = *streams_.back();
    s.maybeIssueBurst();
    return s;
}

void
DfvStreamService::close(DfvStream &stream)
{
    for (auto &owned : streams_) {
        if (owned.get() != &stream)
            continue;
        if (owned->closed_)
            fatal("DFV stream closed twice");
        owned->closed_ = true;
        owned->onDelivered_ = nullptr;
        // Keep the object alive (in-flight completion callbacks may
        // still land and check closed_) but release the bulk memory.
        owned->plan_.pages.clear();
        owned->plan_.pages.shrink_to_fit();
        owned->delivered_.clear();
        owned->delivered_.shrink_to_fit();
        owned->failedPages_.clear();
        owned->failedPages_.shrink_to_fit();
        owned->attempts_.clear();
        DS_ASSERT(active_ > 0);
        --active_;
        return;
    }
    fatal("close() on a stream this service does not own");
}

} // namespace deepstore::ssd
