#include "ssd/dfv_stream.h"

#include <algorithm>
#include <map>

#include "common/logging.h"

namespace deepstore::ssd {

DfvStream::DfvStream(
    sim::EventQueue &events, DfvPlan plan,
    std::function<FlashController &(std::uint32_t)> route,
    StatGroup &stats)
    : events_(events), plan_(std::move(plan)),
      route_(std::move(route)), stats_(stats),
      delivered_(plan_.pages.size(), false)
{
    if (plan_.pages.empty())
        fatal("a DFV stream needs at least one page");
    if (plan_.queueDepthPages == 0)
        fatal("FLASH_DFV queue depth must be at least 1");
}

void
DfvStream::maybeIssueBurst()
{
    if (closed_ || issued_ == pagesTotal())
        return;
    // Burst barrier (§4.4): the bounded FLASH_DFV queue refills only
    // once every outstanding slot has been drained by the consumers.
    if (consumed_ < issued_)
        return;
    const std::uint64_t n = std::min<std::uint64_t>(
        plan_.queueDepthPages, pagesTotal() - issued_);
    ++bursts_;
    stats_.get("dfv.bursts") += 1;
    // Stagger same-controller reads at the steady-state page
    // interval; different controllers issue in parallel.
    std::map<std::uint32_t, std::uint64_t> perChannel;
    for (std::uint64_t j = 0; j < n; ++j) {
        const std::uint64_t index = issued_ + j;
        const PageAddress &addr = plan_.pages[index];
        const Tick delay =
            perChannel[addr.channel]++ * plan_.perChannelIssueInterval;
        events_.scheduleAfter(delay, [this, index] {
            if (closed_)
                return;
            const PageAddress &a = plan_.pages[index];
            FlashCommand cmd;
            cmd.op = FlashOp::Read;
            cmd.addr = a;
            cmd.transferBytes = plan_.transferBytesPerPage;
            cmd.onComplete = [this, index](Tick) {
                pageDelivered(index);
            };
            route_(a.channel).issue(std::move(cmd));
        });
    }
    issued_ += n;
}

void
DfvStream::pageDelivered(std::uint64_t index)
{
    if (closed_)
        return;
    DS_ASSERT(index < delivered_.size());
    DS_ASSERT(!delivered_[index]);
    delivered_[index] = true;
    stats_.get("dfv.pagesStreamed") += 1;
    stats_.get("dfv.bytesStreamed") +=
        static_cast<double>(plan_.transferBytesPerPage);
    const std::uint64_t before = deliveredPrefix_;
    while (deliveredPrefix_ < delivered_.size() &&
           delivered_[deliveredPrefix_])
        ++deliveredPrefix_;
    if (deliveredPrefix_ != before && onDelivered_)
        onDelivered_();
}

void
DfvStream::consumedThrough(std::uint64_t pages)
{
    if (closed_)
        return;
    if (pages <= consumed_)
        return;
    DS_ASSERT(pages <= issued_);
    consumed_ = pages;
    maybeIssueBurst();
}

Tick
DfvStream::nextDeliveryEstimate() const
{
    if (closed_)
        return 0;
    // The next page the consumer is waiting for: first undelivered
    // entry (in flight or still unissued).
    const std::uint64_t next =
        std::min<std::uint64_t>(deliveredPrefix_, pagesTotal());
    if (next == pagesTotal())
        return 0;
    const PageAddress &addr = plan_.pages[next];
    return route_(addr.channel)
        .estimateReadCompletion(addr, plan_.transferBytesPerPage);
}

DfvStreamService::DfvStreamService(sim::EventQueue &events,
                                   Router route, StatGroup &stats)
    : events_(events), route_(std::move(route)), stats_(stats)
{
    DS_ASSERT(route_);
}

DfvStream &
DfvStreamService::open(DfvPlan plan)
{
    streams_.push_back(std::unique_ptr<DfvStream>(
        new DfvStream(events_, std::move(plan), route_, stats_)));
    ++active_;
    stats_.get("dfv.streamsOpened") += 1;
    DfvStream &s = *streams_.back();
    s.maybeIssueBurst();
    return s;
}

void
DfvStreamService::close(DfvStream &stream)
{
    for (auto &owned : streams_) {
        if (owned.get() != &stream)
            continue;
        if (owned->closed_)
            fatal("DFV stream closed twice");
        owned->closed_ = true;
        owned->onDelivered_ = nullptr;
        // Keep the object alive (in-flight completion callbacks may
        // still land and check closed_) but release the bulk memory.
        owned->plan_.pages.clear();
        owned->plan_.pages.shrink_to_fit();
        owned->delivered_.clear();
        owned->delivered_.shrink_to_fit();
        DS_ASSERT(active_ > 0);
        --active_;
        return;
    }
    fatal("close() on a stream this service does not own");
}

} // namespace deepstore::ssd
