#include "ssd/flash_controller.h"

#include <algorithm>

#include "common/logging.h"

namespace deepstore::ssd {

void
FlashParams::validate() const
{
    if (channels == 0 || chipsPerChannel == 0 || planesPerChip == 0 ||
        blocksPerPlane == 0 || pagesPerBlock == 0 || pageBytes == 0)
        fatal("flash geometry has a zero dimension");
    if (readLatency <= 0.0 || programLatency <= 0.0 ||
        eraseLatency <= 0.0)
        fatal("flash latencies must be positive");
    if (channelBandwidth <= 0.0 || externalBandwidth <= 0.0 ||
        dramBandwidth <= 0.0)
        fatal("bandwidths must be positive");
}

const char *
toString(FlashStatus s)
{
    switch (s) {
      case FlashStatus::Ok:
        return "Ok";
      case FlashStatus::RetriedOk:
        return "RetriedOk";
      case FlashStatus::Uncorrectable:
        return "Uncorrectable";
    }
    return "?";
}

std::uint64_t
faultKey(const PageAddress &addr)
{
    // Disjoint bit fields: page[0:16) block[16:32) plane[32:40)
    // chip[40:48) channel[48:64). Exact for any geometry the
    // validator accepts, so distinct pages never collide.
    return (static_cast<std::uint64_t>(addr.channel) << 48) |
           (static_cast<std::uint64_t>(addr.chip) << 40) |
           (static_cast<std::uint64_t>(addr.plane) << 32) |
           (static_cast<std::uint64_t>(addr.block) << 16) |
           static_cast<std::uint64_t>(addr.page);
}

FlashController::FlashController(sim::EventQueue &events,
                                 const FlashParams &params,
                                 std::uint32_t channel_id,
                                 StatGroup &stats)
    : events_(events), params_(params), channelId_(channel_id),
      stats_(stats), injector_(params.faults),
      planeBusy_(static_cast<std::size_t>(params.chipsPerChannel) *
                     params.planesPerChip,
                 0),
      bus_("flash.bus." + std::to_string(channel_id),
           params.channelBandwidth)
{
    params_.validate();
    if (channel_id >= params_.channels)
        fatal("channel id %u out of range", channel_id);
}

Tick &
FlashController::planeBusyUntil(const PageAddress &addr)
{
    DS_ASSERT(addr.chip < params_.chipsPerChannel);
    DS_ASSERT(addr.plane < params_.planesPerChip);
    return planeBusy_[static_cast<std::size_t>(addr.chip) *
                          params_.planesPerChip +
                      addr.plane];
}

Tick
FlashController::planeBusyUntilConst(const PageAddress &addr) const
{
    return planeBusy_[static_cast<std::size_t>(addr.chip) *
                          params_.planesPerChip +
                      addr.plane];
}

FlashController::ReadTiming
FlashController::readTiming(const PageAddress &addr,
                            std::uint32_t attempt) const
{
    ReadTiming t;
    // Legacy deterministic read-retry ladder: the array read is
    // stretched by the full penalty but still succeeds.
    double latency = params_.readLatency;
    if (params_.readRetryProbability > 0.0 && needsRetry(addr)) {
        latency *= 1.0 + params_.readRetryPenalty;
        t.status = FlashStatus::RetriedOk;
    }
    t.arrayTicks = secondsToTicks(latency);

    // Collect the uncorrectable verdict from every fault source —
    // the flat schedule, correlated bursts, and the wear model —
    // before charging the ladder, so overlapping sources cost one
    // ladder walk, not several.
    bool uncorrectable = false;
    const std::uint64_t key = faultKey(addr);
    if (injector_.flashFaultsEnabled()) {
        uncorrectable = injector_.pageUncorrectable(key, attempt);
        if (!uncorrectable && injector_.anyBursts())
            uncorrectable = injector_.burstUncorrectable(
                key, attempt, addr.channel, addr.chip, addr.plane,
                events_.now());
        // Latent partial-page corruption: any bad sector defeats ECC
        // on every attempt (the cells themselves are damaged), so it
        // folds into the same single ladder charge.
        if (!uncorrectable)
            uncorrectable = injector_.pageHasCorruptedSector(key);
    }
    if (!uncorrectable && wearProbe_)
        uncorrectable = injector_.wearUncorrectable(
            key, attempt, wearProbe_(addr));
    if (uncorrectable) {
        // The controller walks the whole retry ladder before
        // giving up, so a failed read still costs the stretched
        // array latency.
        t.status = FlashStatus::Uncorrectable;
        t.arrayTicks = secondsToTicks(
            params_.readLatency * (1.0 + params_.readRetryPenalty));
    }
    if (injector_.flashFaultsEnabled()) {
        t.arrayTicks += injector_.planeStallTicks(key, attempt);
        t.channelStall = injector_.channelStallTicks(key, attempt);
    }
    return t;
}

void
FlashController::powerLoss()
{
    const Tick now = events_.now();
    for (Tick &p : planeBusy_)
        p = now;
    bus_.reset(now);
}

void
FlashController::issue(FlashCommand cmd)
{
    if (cmd.addr.channel != channelId_)
        panic("command for channel %u issued to controller %u",
              cmd.addr.channel, channelId_);
    if (cmd.transferBytes > params_.pageBytes)
        fatal("transfer of %llu bytes exceeds the %llu-byte page",
              static_cast<unsigned long long>(cmd.transferBytes),
              static_cast<unsigned long long>(params_.pageBytes));

    const Tick now = events_.now();
    Tick &plane = planeBusyUntil(cmd.addr);

    switch (cmd.op) {
      case FlashOp::Read: {
        const ReadTiming t = readTiming(cmd.addr, cmd.attempt);
        Tick read_start = std::max(now, plane);
        Tick read_done = read_start + t.arrayTicks;
        plane = read_done;
        stats_.get("flash.pageReads") += 1;
        if (t.status == FlashStatus::RetriedOk)
            stats_.get("flash.readRetries") += 1;
        if (t.channelStall > 0)
            stats_.get("flash.channelStalls") += 1;
        // Lifecycle accounting: only *issued* reads disturb cells
        // (estimates never reach here), and the observer runs after
        // this read's timing is fixed, so it never counts itself.
        if (readObserver_)
            readObserver_(cmd.addr, t.status);
        if (t.status == FlashStatus::Uncorrectable) {
            // The controller gives up after the ladder and reports
            // the error without a data transfer.
            stats_.get("flash.uncorrectableReads") += 1;
            if (cmd.onComplete) {
                events_.schedule(
                    read_done, [cb = std::move(cmd.onComplete),
                                read_done] {
                        cb(read_done, FlashStatus::Uncorrectable);
                    });
            }
            break;
        }
        // Bus transfer after the page lands in the page buffer: a
        // FIFO reservation on the shared channel-bus link.
        Tick xfer_done = bus_.acquireTicks(
            read_done,
            t.channelStall +
                secondsToTicks(params_.channelTransferTime(
                    cmd.transferBytes)));
        stats_.get("flash.readBytes") +=
            static_cast<double>(cmd.transferBytes);
        if (cmd.onComplete) {
            events_.schedule(xfer_done,
                             [cb = std::move(cmd.onComplete),
                              xfer_done, st = t.status] {
                                 cb(xfer_done, st);
                             });
        }
        break;
      }
      case FlashOp::Program: {
        // Bus transfer into the page buffer, then the program pulse.
        Tick xfer_done = bus_.acquireTicks(
            now, secondsToTicks(params_.channelTransferTime(
                     cmd.transferBytes)));
        Tick prog_start = std::max(xfer_done, plane);
        Tick prog_done =
            prog_start + secondsToTicks(params_.programLatency);
        plane = prog_done;
        stats_.get("flash.pagePrograms") += 1;
        stats_.get("flash.writeBytes") +=
            static_cast<double>(cmd.transferBytes);
        if (cmd.onComplete) {
            events_.schedule(prog_done,
                             [cb = std::move(cmd.onComplete),
                              prog_done] {
                                 cb(prog_done, FlashStatus::Ok);
                             });
        }
        break;
      }
      case FlashOp::Erase: {
        Tick start = std::max(now, plane);
        Tick done = start + secondsToTicks(params_.eraseLatency);
        plane = done;
        stats_.get("flash.blockErases") += 1;
        if (cmd.onComplete) {
            events_.schedule(
                done, [cb = std::move(cmd.onComplete), done] {
                    cb(done, FlashStatus::Ok);
                });
        }
        break;
      }
    }
}

bool
FlashController::needsRetry(const PageAddress &addr) const
{
    // splitmix-style hash of the physical address -> uniform [0,1).
    std::uint64_t x = (static_cast<std::uint64_t>(addr.block) << 40) ^
                      (static_cast<std::uint64_t>(addr.page) << 24) ^
                      (static_cast<std::uint64_t>(addr.chip) << 16) ^
                      (static_cast<std::uint64_t>(addr.plane) << 8) ^
                      addr.channel ^ 0x9E3779B97F4A7C15ULL;
    x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ULL;
    x = (x ^ (x >> 27)) * 0x94D049BB133111EBULL;
    x ^= x >> 31;
    double u = static_cast<double>(x >> 11) * 0x1.0p-53;
    return u < params_.readRetryProbability;
}

Tick
FlashController::estimateReadCompletion(const PageAddress &addr,
                                        std::uint64_t bytes,
                                        std::uint32_t attempt) const
{
    const Tick now = events_.now();
    const ReadTiming t = readTiming(addr, attempt);
    Tick read_done =
        std::max(now, planeBusyUntilConst(addr)) + t.arrayTicks;
    if (t.status == FlashStatus::Uncorrectable)
        return read_done;
    Tick xfer_done = std::max(read_done, bus_.freeAt()) +
                     t.channelStall +
                     secondsToTicks(params_.channelTransferTime(bytes));
    return xfer_done;
}

} // namespace deepstore::ssd
