/**
 * @file
 * Block-level Flash Translation Layer.
 *
 * DeepStore "employs a regular block-level FTL" (§4.4): the engine
 * asks it once for a database's starting physical address and the
 * accelerators compute page offsets directly, avoiding per-page
 * translation. We implement a superblock FTL: one logical superblock
 * (the same block index across every plane of every channel) maps to
 * one physical superblock. With the channel-major PPN striping in
 * Geometry, a superblock is a contiguous PPN range, so any page of a
 * sequentially written database is reachable by pure offset
 * arithmetic — exactly the property §4.4 relies on.
 *
 * Writes are expected to be append-style (intelligent-query databases
 * are write-once, read-many). An in-place overwrite forces a
 * read-modify-write migration of the containing superblock, which the
 * model charges and counts; erase counters provide wear statistics
 * and a greedy least-worn allocator provides wear leveling.
 */

#ifndef DEEPSTORE_SSD_FTL_H
#define DEEPSTORE_SSD_FTL_H

#include <cstdint>
#include <vector>

#include "common/stats.h"
#include "ssd/geometry.h"

namespace deepstore::ssd {

/** Result of a page write through the FTL. */
struct WriteResult
{
    std::uint64_t ppn = 0;
    /** Pages migrated by a forced read-modify-write (0 normally). */
    std::uint64_t migratedPages = 0;
    /** Blocks erased as part of this write (0 normally). */
    std::uint64_t erasedBlocks = 0;
};

/** Superblock-granularity block-level FTL. */
class Ftl
{
  public:
    Ftl(const FlashParams &params, StatGroup &stats);

    /** Pages per superblock (contiguous PPN run). */
    std::uint64_t superblockPages() const { return superPages_; }

    /** Number of superblocks in the logical and physical spaces. */
    std::uint32_t superblockCount() const { return superCount_; }

    /** True when the LPN has been written and not trimmed. */
    bool isMapped(std::uint64_t lpn) const;

    /**
     * Translate a mapped LPN to its PPN.
     * fatal() on an unmapped page (a read of never-written data is a
     * host error).
     */
    std::uint64_t translate(std::uint64_t lpn) const;

    /**
     * Record a write to `lpn`, allocating a physical superblock on
     * first touch. Rewriting an already-valid page triggers a
     * superblock migration (see file comment).
     */
    WriteResult write(std::uint64_t lpn);

    /**
     * Invalidate `count` pages starting at `lpn_start`. Superblocks
     * whose pages all become invalid are erased and returned to the
     * free pool.
     * @return the physical superblocks that were erased.
     */
    std::vector<std::uint32_t> trim(std::uint64_t lpn_start,
                                    std::uint64_t count);

    /** Superblocks currently free. */
    std::uint32_t freeSuperblocks() const;

    /** Total erases across all physical superblocks. */
    std::uint64_t totalErases() const;

    /** Max minus min per-superblock erase count (wear spread). */
    std::uint64_t eraseSpread() const;

  private:
    static constexpr std::uint32_t kUnmapped = 0xFFFFFFFFu;

    std::uint32_t allocateSuperblock();
    void eraseSuperblock(std::uint32_t phys);

    FlashParams params_;
    StatGroup &stats_;
    std::uint64_t superPages_ = 0;
    std::uint32_t superCount_ = 0;

    /** logical superblock -> physical superblock (or kUnmapped). */
    std::vector<std::uint32_t> map_;
    /** physical superblock -> free? */
    std::vector<bool> freeSb_;
    /** physical superblock erase counters (wear). */
    std::vector<std::uint64_t> eraseCount_;
    /** valid-page bitmap, indexed by LPN. */
    std::vector<bool> valid_;
    /** count of valid pages per logical superblock. */
    std::vector<std::uint64_t> validCount_;
};

} // namespace deepstore::ssd

#endif // DEEPSTORE_SSD_FTL_H
