/**
 * @file
 * Block-level Flash Translation Layer.
 *
 * DeepStore "employs a regular block-level FTL" (§4.4): the engine
 * asks it once for a database's starting physical address and the
 * accelerators compute page offsets directly, avoiding per-page
 * translation. We implement a superblock FTL: one logical superblock
 * (the same block index across every plane of every channel) maps to
 * one physical superblock. With the channel-major PPN striping in
 * Geometry, a superblock is a contiguous PPN range, so any page of a
 * sequentially written database is reachable by pure offset
 * arithmetic — exactly the property §4.4 relies on.
 *
 * Writes are expected to be append-style (intelligent-query databases
 * are write-once, read-many). An in-place overwrite forces a
 * read-modify-write migration of the containing superblock, which the
 * model charges and counts; erase counters provide wear statistics
 * and a greedy least-worn allocator provides wear leveling.
 *
 * With `FlashParams::wear` enabled the FTL also owns the flash
 * *lifecycle*: every physical superblock carries deterministic decay
 * counters (erases, reads since last program, data age, observed
 * errors) from which it derives a raw bit error rate. The SSD layer
 * feeds that RBER to the flash controllers as the per-page
 * uncorrectable probability, reports read outcomes back, and asks
 * `lifecycleAction()` whether the block has crossed the relocation
 * (copy valid pages to a fresh superblock in the background) or
 * retirement (take it out of service for good) thresholds. Relocation
 * is split into begin/finish/abort so the SSD can run the copy as
 * real flash commands over simulated time while reads keep hitting
 * the old mapping, and a mid-copy overwrite or power loss abandons
 * the job without corrupting the map. `mappingEpoch()` counts every
 * committed remapping so plan signatures built on physical addresses
 * can tell when they went stale.
 */

#ifndef DEEPSTORE_SSD_FTL_H
#define DEEPSTORE_SSD_FTL_H

#include <cstdint>
#include <optional>
#include <vector>

#include "common/stats.h"
#include "ssd/geometry.h"

namespace deepstore::ssd {

/** Result of a page write through the FTL. */
struct WriteResult
{
    std::uint64_t ppn = 0;
    /** Pages migrated by a forced read-modify-write (0 normally). */
    std::uint64_t migratedPages = 0;
    /** Blocks erased as part of this write (0 normally). */
    std::uint64_t erasedBlocks = 0;
};

/** What the lifecycle model wants done about a physical superblock. */
enum class LifecycleAction
{
    None,     ///< healthy (or already being handled / not mapped)
    Relocate, ///< RBER crossed the relocation threshold
    Retire,   ///< RBER crossed the retirement threshold
};

/** An in-progress background relocation (begin/finish/abort). */
struct RelocationJob
{
    /** Logical superblock being moved. */
    std::uint32_t logicalSb = 0;
    /** Source physical superblock (still serving reads). */
    std::uint32_t oldPhys = 0;
    /** Destination physical superblock (allocated, not yet mapped). */
    std::uint32_t newPhys = 0;
    /** Page offsets within the superblock that hold valid data. */
    std::vector<std::uint64_t> validOffsets;
};

/** Superblock-granularity block-level FTL. */
class Ftl
{
  public:
    static constexpr std::uint32_t kUnmapped = 0xFFFFFFFFu;

    Ftl(const FlashParams &params, StatGroup &stats);

    /** Pages per superblock (contiguous PPN run). */
    std::uint64_t superblockPages() const { return superPages_; }

    /** Number of superblocks in the logical and physical spaces. */
    std::uint32_t superblockCount() const { return superCount_; }

    /** True when the LPN has been written and not trimmed. */
    bool isMapped(std::uint64_t lpn) const;

    /**
     * Translate a mapped LPN to its PPN.
     * fatal() on an unmapped page (a read of never-written data is a
     * host error).
     */
    std::uint64_t translate(std::uint64_t lpn) const;

    /**
     * Record a write to `lpn`, allocating a physical superblock on
     * first touch. Rewriting an already-valid page triggers a
     * superblock migration (see file comment). `now` timestamps the
     * program for the retention model (0 is fine when wear modeling
     * is disabled).
     */
    WriteResult write(std::uint64_t lpn, Tick now = 0);

    /**
     * Invalidate `count` pages starting at `lpn_start`. Superblocks
     * whose pages all become invalid are erased and returned to the
     * free pool.
     * @return the physical superblocks that were erased.
     */
    std::vector<std::uint32_t> trim(std::uint64_t lpn_start,
                                    std::uint64_t count);

    /** Superblocks currently free. */
    std::uint32_t freeSuperblocks() const;

    /** Total erases across all physical superblocks. */
    std::uint64_t totalErases() const;

    /** Max minus min per-superblock erase count across in-service
     *  (non-retired) superblocks; 0 when none remain. */
    std::uint64_t eraseSpread() const;

    // ---- lifecycle model (FlashParams::wear) ---------------------

    /** Note a completed page read (read-disturb accounting). */
    void noteRead(std::uint64_t ppn);
    /** Note an ECC-uncorrectable read of this page. */
    void noteUncorrectable(std::uint64_t ppn);
    /** Note a read that needed the retry ladder. */
    void noteRetried(std::uint64_t ppn);

    /**
     * Deterministic per-page uncorrectable probability (RBER) of the
     * superblock containing `ppn` at tick `now` — the linear decay
     * model of WearConfig, clamped to [0, 1]. 0 when wear modeling
     * is disabled.
     */
    double uncorrectableProbability(std::uint64_t ppn, Tick now) const;

    /** Threshold check for the superblock containing nothing but
     *  `phys`'s pages; None for unmapped, retired, or already
     *  relocating superblocks. */
    LifecycleAction lifecycleAction(std::uint32_t phys, Tick now) const;

    /**
     * Start relocating `phys`: allocates a destination superblock
     * and snapshots the valid page offsets. The mapping is *not*
     * changed — reads keep hitting `phys` until finishRelocation()
     * commits. nullopt when the block is not eligible (unmapped,
     * retired, already relocating) or no free superblock exists.
     */
    std::optional<RelocationJob> beginRelocation(std::uint32_t phys);

    /**
     * Commit a relocation: atomically remap the logical superblock
     * to the copy, then erase — or, when `retire_old` is set, retire
     * — the source. Returns false (and releases the destination)
     * when the mapping moved underneath the job (a concurrent
     * overwrite migration); the copy is then abandoned.
     */
    bool finishRelocation(const RelocationJob &job, bool retire_old,
                          Tick now);

    /** Abandon an in-flight relocation (power loss): the source
     *  keeps serving, the destination returns to the free pool. */
    void abortRelocation(const RelocationJob &job);

    /** Take a physical superblock out of service permanently. It
     *  must not be mapped. Idempotent. */
    void retireSuperblock(std::uint32_t phys);

    // ---- lifecycle introspection ---------------------------------

    std::uint64_t eraseCount(std::uint32_t phys) const;
    std::uint64_t readCount(std::uint32_t phys) const;
    bool retired(std::uint32_t phys) const;
    std::uint32_t retiredSuperblocks() const;
    /** Physical superblock mapped to `logical` (kUnmapped if none). */
    std::uint32_t mappedPhysical(std::uint32_t logical) const;
    /** Bumped on every committed remapping (migration, trim-erase,
     *  relocation, retirement): physical-address-derived plan
     *  signatures mix it in so they go stale with the map. */
    std::uint64_t mappingEpoch() const { return mappingEpoch_; }

  private:
    std::uint32_t allocateSuperblock();
    void eraseSuperblock(std::uint32_t phys);

    FlashParams params_;
    StatGroup &stats_;
    std::uint64_t superPages_ = 0;
    std::uint32_t superCount_ = 0;

    /** logical superblock -> physical superblock (or kUnmapped). */
    std::vector<std::uint32_t> map_;
    /** physical superblock -> free? */
    std::vector<bool> freeSb_;
    /** physical superblock erase counters (wear). */
    std::vector<std::uint64_t> eraseCount_;
    /** valid-page bitmap, indexed by LPN. */
    std::vector<bool> valid_;
    /** count of valid pages per logical superblock. */
    std::vector<std::uint64_t> validCount_;

    // ---- lifecycle state (per physical superblock) ---------------

    /** physical -> logical back-map (kUnmapped when unmapped). */
    std::vector<std::uint32_t> physToLogical_;
    /** reads since last program (read-disturb). */
    std::vector<std::uint64_t> readCount_;
    /** tick of the most recent program (retention age). */
    std::vector<Tick> programTick_;
    /** observed uncorrectable reads since last program. */
    std::vector<std::uint64_t> errorCount_;
    /** observed retried reads since last program. */
    std::vector<std::uint64_t> retriedCount_;
    /** permanently out of service. */
    std::vector<bool> retired_;
    /** relocation in progress (source side). */
    std::vector<bool> relocating_;
    std::uint64_t mappingEpoch_ = 0;
};

} // namespace deepstore::ssd

#endif // DEEPSTORE_SSD_FTL_H
