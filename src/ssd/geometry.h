/**
 * @file
 * Physical page addressing for the flash hierarchy
 * (channel / chip / plane / block / page) and conversions to and from
 * flat physical page numbers (PPNs).
 *
 * The PPN layout stripes consecutive PPNs across channels first, then
 * chips, then planes — the order that maximizes parallelism for the
 * sequential, striped feature-database layout DeepStore uses (§4.4).
 */

#ifndef DEEPSTORE_SSD_GEOMETRY_H
#define DEEPSTORE_SSD_GEOMETRY_H

#include <cstdint>

#include "common/logging.h"
#include "ssd/flash_params.h"

namespace deepstore::ssd {

/** Fully-qualified physical flash page address. */
struct PageAddress
{
    std::uint32_t channel = 0;
    std::uint32_t chip = 0;
    std::uint32_t plane = 0;
    std::uint32_t block = 0;
    std::uint32_t page = 0;

    bool
    operator==(const PageAddress &o) const
    {
        return channel == o.channel && chip == o.chip &&
               plane == o.plane && block == o.block && page == o.page;
    }
};

/** PPN <-> PageAddress conversions for a given geometry. */
class Geometry
{
  public:
    explicit Geometry(const FlashParams &params) : p_(params) {}

    /**
     * Decode a flat PPN with channel-major striping:
     * ppn = (((page-stripe * planes + plane) * chips + chip)
     *          * channels + channel)
     * so consecutive PPNs round-robin across channels, then chips,
     * then planes, then advance to the next page within the plane.
     */
    PageAddress
    decode(std::uint64_t ppn) const
    {
        DS_ASSERT(ppn < p_.totalPages());
        PageAddress a;
        a.channel = static_cast<std::uint32_t>(ppn % p_.channels);
        ppn /= p_.channels;
        a.chip = static_cast<std::uint32_t>(ppn % p_.chipsPerChannel);
        ppn /= p_.chipsPerChannel;
        a.plane = static_cast<std::uint32_t>(ppn % p_.planesPerChip);
        ppn /= p_.planesPerChip;
        // Remaining bits select the page within the plane, filled
        // page-within-block first.
        a.page = static_cast<std::uint32_t>(ppn % p_.pagesPerBlock);
        a.block = static_cast<std::uint32_t>(ppn / p_.pagesPerBlock);
        DS_ASSERT(a.block < p_.blocksPerPlane);
        return a;
    }

    /** Inverse of decode(). */
    std::uint64_t
    encode(const PageAddress &a) const
    {
        DS_ASSERT(a.channel < p_.channels);
        DS_ASSERT(a.chip < p_.chipsPerChannel);
        DS_ASSERT(a.plane < p_.planesPerChip);
        DS_ASSERT(a.block < p_.blocksPerPlane);
        DS_ASSERT(a.page < p_.pagesPerBlock);
        std::uint64_t stripe =
            static_cast<std::uint64_t>(a.block) * p_.pagesPerBlock +
            a.page;
        std::uint64_t ppn = stripe;
        ppn = ppn * p_.planesPerChip + a.plane;
        ppn = ppn * p_.chipsPerChannel + a.chip;
        ppn = ppn * p_.channels + a.channel;
        return ppn;
    }

    const FlashParams &params() const { return p_; }

  private:
    FlashParams p_;
};

} // namespace deepstore::ssd

#endif // DEEPSTORE_SSD_GEOMETRY_H
