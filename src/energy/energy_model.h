/**
 * @file
 * Linear energy model for DeepStore accelerators (paper §6.1).
 *
 * The paper converts operation/access counts into energy with a linear
 * model in the style of Eyeriss [29] and Morph [52]: arithmetic energy
 * scaled to 32 nm, CACTI-derived SRAM access energy (itrs-hp for the
 * SSD/channel accelerators, itrs-low for the power-constrained
 * chip-level ones), 20 pJ/bit DRAM, per-page flash access energy
 * calibrated to an Intel DC P4500 class device, and NoC wire energy
 * extrapolated from wire length (sqrt of accelerator area).
 *
 * The area model (PE + SRAM + controller coefficients) is fitted to
 * the paper's Table 3 so the three published accelerator areas
 * (31.7 / 7.4 / 2.5 mm^2) are reproduced exactly; the fit is asserted
 * in the test suite.
 */

#ifndef DEEPSTORE_ENERGY_ENERGY_MODEL_H
#define DEEPSTORE_ENERGY_ENERGY_MODEL_H

#include <cstdint>

#include "common/units.h"
#include "systolic/array_config.h"
#include "systolic/layer_run.h"

namespace deepstore::energy {

/** SRAM corner used by CACTI (paper §6.1). */
enum class SramModel
{
    ItrsHp,  ///< high performance (SSD- and channel-level SRAMs)
    ItrsLow, ///< low power (chip-level SRAMs)
};

/** Technology and calibration constants (32 nm node). */
struct EnergyParams
{
    /** Energy of one FP32 multiply-accumulate at 32 nm. */
    double macEnergy = 1.8e-12;

    /** DRAM access energy: 20 pJ/bit (paper §6.1). */
    double dramEnergyPerByte = 160e-12;

    /** Flash array read energy per page (P4500-class calibration). */
    double flashPageReadEnergy = 15e-6;

    /** Flash program energy per page. */
    double flashPageProgramEnergy = 220e-6;

    /** NoC wire energy per bit per mm at 32 nm. */
    double wireEnergyPerBitMm = 0.15e-12;

    /** Baseline SRAM access energy for a 4-byte word from an 8 KiB
     *  itrs-hp array; larger arrays scale as capacity^0.3 (CACTI
     *  6.5 trend). */
    double sramBaseEnergy = 3.5e-12;

    /** itrs-low dynamic energy relative to itrs-hp. */
    double sramLowPowerFactor = 0.55;

    /** Leakage power density (W/mm^2) for the two corners. */
    double staticPowerPerMm2Hp = 0.030;
    double staticPowerPerMm2Low = 0.005;

    // Area model fitted to Table 3 (see file comment).
    double peAreaMm2 = 0.00547;
    double sramAreaMm2PerMiB = 2.493;
    double controllerAreaMm2 = 0.553;
};

/** Energy split the paper reports in Fig. 12. */
struct EnergyBreakdown
{
    double computeJ = 0.0; ///< PE arithmetic
    double memoryJ = 0.0;  ///< SRAM + L2 + NoC + DRAM
    double flashJ = 0.0;   ///< flash array accesses

    double total() const { return computeJ + memoryJ + flashJ; }

    void
    add(const EnergyBreakdown &o)
    {
        computeJ += o.computeJ;
        memoryJ += o.memoryJ;
        flashJ += o.flashJ;
    }
};

/** CACTI-like per-access SRAM read/write energy for a 4-byte word. */
double sramAccessEnergy(const EnergyParams &params,
                        std::uint64_t capacity_bytes, SramModel model);

/** Accelerator die area from the fitted Table 3 model. */
double acceleratorAreaMm2(const EnergyParams &params,
                          std::int64_t pe_count,
                          std::uint64_t private_sram_bytes);

/** Converts systolic traffic tallies into Joules. */
class AcceleratorEnergyModel
{
  public:
    AcceleratorEnergyModel(EnergyParams params,
                           systolic::ArrayConfig config,
                           SramModel sram_model);

    /**
     * Energy of executing the given traffic record, plus
     * `flash_pages_read` page array reads attributed to this
     * accelerator's share of the work.
     */
    EnergyBreakdown energyOf(const systolic::LayerRun &run,
                             std::uint64_t flash_pages_read) const;

    /** Leakage power of the accelerator macro. */
    double staticPower() const;

    /** Die area of this accelerator instance. */
    double areaMm2() const;

    /** Average power while busy for `seconds` executing `run`. */
    double averagePower(const systolic::LayerRun &run,
                        std::uint64_t flash_pages_read,
                        double seconds) const;

    const EnergyParams &params() const { return params_; }

  private:
    EnergyParams params_;
    systolic::ArrayConfig config_;
    SramModel sramModel_;
    double spadAccessEnergy_;
    double l2AccessEnergy_;
    double nocEnergyPerByte_;
};

} // namespace deepstore::energy

#endif // DEEPSTORE_ENERGY_ENERGY_MODEL_H
