#include "energy/energy_model.h"

#include <cmath>

#include "common/logging.h"

namespace deepstore::energy {

double
sramAccessEnergy(const EnergyParams &params, std::uint64_t capacity_bytes,
                 SramModel model)
{
    if (capacity_bytes == 0)
        fatal("SRAM capacity must be positive");
    // CACTI 6.5 trend: per-access energy grows roughly with
    // capacity^0.3 for word-wide reads.
    double ratio = static_cast<double>(capacity_bytes) /
                   static_cast<double>(8 * KiB);
    double e = params.sramBaseEnergy * std::pow(ratio, 0.3);
    if (model == SramModel::ItrsLow)
        e *= params.sramLowPowerFactor;
    return e;
}

double
acceleratorAreaMm2(const EnergyParams &params, std::int64_t pe_count,
                   std::uint64_t private_sram_bytes)
{
    DS_ASSERT(pe_count > 0);
    return static_cast<double>(pe_count) * params.peAreaMm2 +
           static_cast<double>(private_sram_bytes) /
               static_cast<double>(MiB) * params.sramAreaMm2PerMiB +
           params.controllerAreaMm2;
}

AcceleratorEnergyModel::AcceleratorEnergyModel(
    EnergyParams params, systolic::ArrayConfig config,
    SramModel sram_model)
    : params_(params), config_(std::move(config)), sramModel_(sram_model)
{
    config_.validate();
    spadAccessEnergy_ =
        sramAccessEnergy(params_, config_.scratchpadBytes, sramModel_);
    l2AccessEnergy_ =
        config_.sharedL2Bytes > 0
            ? sramAccessEnergy(params_, config_.sharedL2Bytes,
                               SramModel::ItrsHp)
            : 0.0;
    // Wire length to the shared L2 scales with the die edge.
    double edge_mm = std::sqrt(areaMm2());
    nocEnergyPerByte_ = params_.wireEnergyPerBitMm * 8.0 * edge_mm;
}

double
AcceleratorEnergyModel::areaMm2() const
{
    return acceleratorAreaMm2(params_, config_.peCount(),
                              config_.scratchpadBytes);
}

EnergyBreakdown
AcceleratorEnergyModel::energyOf(const systolic::LayerRun &run,
                                 std::uint64_t flash_pages_read) const
{
    EnergyBreakdown e;
    e.computeJ = static_cast<double>(run.macs) * params_.macEnergy;

    double spad = static_cast<double>(run.spadReads + run.spadWrites) *
                  spadAccessEnergy_;
    double l2 = static_cast<double>(run.l2Reads) *
                (l2AccessEnergy_ +
                 nocEnergyPerByte_ *
                     static_cast<double>(config_.wordBytes));
    double dram = static_cast<double>(run.dramReadBytes +
                                      run.dramWriteBytes) *
                  params_.dramEnergyPerByte;
    e.memoryJ = spad + l2 + dram;

    e.flashJ = static_cast<double>(flash_pages_read) *
               params_.flashPageReadEnergy;
    return e;
}

double
AcceleratorEnergyModel::staticPower() const
{
    double density = sramModel_ == SramModel::ItrsLow
                         ? params_.staticPowerPerMm2Low
                         : params_.staticPowerPerMm2Hp;
    return areaMm2() * density;
}

double
AcceleratorEnergyModel::averagePower(const systolic::LayerRun &run,
                                     std::uint64_t flash_pages_read,
                                     double seconds) const
{
    if (seconds <= 0.0)
        fatal("averagePower needs a positive duration");
    return energyOf(run, flash_pages_read).total() / seconds +
           staticPower();
}

} // namespace deepstore::energy
