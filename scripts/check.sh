#!/usr/bin/env bash
# Tier-1 verification: deepstore_lint first (cheapest signal), then a
# normal RelWithDebInfo build+test run with warnings-as-errors, then
# the same suite under AddressSanitizer + UBSan (the
# DEEPSTORE_SANITIZE CMake option). Usage: scripts/check.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

echo "=== tier-1: normal build (-Werror) ==="
cmake -B build -S . -DDEEPSTORE_WERROR=ON >/dev/null
cmake --build build -j "$JOBS"

# Run the determinism linter before the test suites: a D-rule
# violation is a faster, more precise explanation of a replay
# divergence than a failing golden-tick pin. The run also verifies
# the checked-in D8 shared-state inventory hasn't drifted and leaves
# a machine-readable report for CI to archive.
echo
echo "=== static analysis: deepstore_lint ==="
build/tools/lint/deepstore_lint --root . --json \
    --check-inventory tools/lint/sim_state_inventory.json \
    > build/lint_report.json
build/tools/lint/deepstore_lint --root . \
    --check-inventory tools/lint/sim_state_inventory.json

echo
echo "=== tier-1: test suite ==="
ctest --test-dir build --output-on-failure -j "$JOBS"

echo
echo "=== tier-1: sanitized build (address;undefined) ==="
cmake -B build-san -S . \
    -DDEEPSTORE_SANITIZE="address;undefined" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build build-san -j "$JOBS"
ctest --test-dir build-san --output-on-failure -j "$JOBS"

echo
echo "check.sh: lint + both test runs passed"
