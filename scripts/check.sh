#!/usr/bin/env bash
# Tier-1 verification, twice: a normal RelWithDebInfo build+test run,
# then the same suite under AddressSanitizer + UBSan (the
# DEEPSTORE_SANITIZE CMake option). Usage: scripts/check.sh [jobs]
set -euo pipefail

cd "$(dirname "$0")/.."
JOBS="${1:-$(nproc)}"

echo "=== tier-1: normal build ==="
cmake -B build -S . >/dev/null
cmake --build build -j "$JOBS"
ctest --test-dir build --output-on-failure -j "$JOBS"

echo
echo "=== tier-1: sanitized build (address;undefined) ==="
cmake -B build-san -S . \
    -DDEEPSTORE_SANITIZE="address;undefined" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo >/dev/null
cmake --build build-san -j "$JOBS"
ctest --test-dir build-san --output-on-failure -j "$JOBS"

echo
echo "check.sh: both runs passed"
