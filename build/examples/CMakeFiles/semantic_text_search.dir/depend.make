# Empty dependencies file for semantic_text_search.
# This may be replaced when dependencies are built.
