file(REMOVE_RECURSE
  "CMakeFiles/semantic_text_search.dir/semantic_text_search.cpp.o"
  "CMakeFiles/semantic_text_search.dir/semantic_text_search.cpp.o.d"
  "semantic_text_search"
  "semantic_text_search.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/semantic_text_search.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
