# Empty compiler generated dependencies file for person_reid.
# This may be replaced when dependencies are built.
