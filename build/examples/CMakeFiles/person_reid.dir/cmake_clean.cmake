file(REMOVE_RECURSE
  "CMakeFiles/person_reid.dir/person_reid.cpp.o"
  "CMakeFiles/person_reid.dir/person_reid.cpp.o.d"
  "person_reid"
  "person_reid.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/person_reid.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
