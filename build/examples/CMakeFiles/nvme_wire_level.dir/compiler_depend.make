# Empty compiler generated dependencies file for nvme_wire_level.
# This may be replaced when dependencies are built.
