file(REMOVE_RECURSE
  "CMakeFiles/nvme_wire_level.dir/nvme_wire_level.cpp.o"
  "CMakeFiles/nvme_wire_level.dir/nvme_wire_level.cpp.o.d"
  "nvme_wire_level"
  "nvme_wire_level.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/nvme_wire_level.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
