# Empty dependencies file for music_retrieval.
# This may be replaced when dependencies are built.
