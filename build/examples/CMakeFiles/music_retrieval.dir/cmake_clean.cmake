file(REMOVE_RECURSE
  "CMakeFiles/music_retrieval.dir/music_retrieval.cpp.o"
  "CMakeFiles/music_retrieval.dir/music_retrieval.cpp.o.d"
  "music_retrieval"
  "music_retrieval.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/music_retrieval.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
