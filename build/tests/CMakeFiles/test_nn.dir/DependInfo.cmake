
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/nn/test_executor.cc" "tests/CMakeFiles/test_nn.dir/nn/test_executor.cc.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/test_executor.cc.o.d"
  "/root/repo/tests/nn/test_layer.cc" "tests/CMakeFiles/test_nn.dir/nn/test_layer.cc.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/test_layer.cc.o.d"
  "/root/repo/tests/nn/test_model.cc" "tests/CMakeFiles/test_nn.dir/nn/test_model.cc.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/test_model.cc.o.d"
  "/root/repo/tests/nn/test_semantic.cc" "tests/CMakeFiles/test_nn.dir/nn/test_semantic.cc.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/test_semantic.cc.o.d"
  "/root/repo/tests/nn/test_serialize.cc" "tests/CMakeFiles/test_nn.dir/nn/test_serialize.cc.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/test_serialize.cc.o.d"
  "/root/repo/tests/nn/test_tensor.cc" "tests/CMakeFiles/test_nn.dir/nn/test_tensor.cc.o" "gcc" "tests/CMakeFiles/test_nn.dir/nn/test_tensor.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/nn/CMakeFiles/ds_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/ds_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ds_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
