file(REMOVE_RECURSE
  "CMakeFiles/test_nn.dir/nn/test_executor.cc.o"
  "CMakeFiles/test_nn.dir/nn/test_executor.cc.o.d"
  "CMakeFiles/test_nn.dir/nn/test_layer.cc.o"
  "CMakeFiles/test_nn.dir/nn/test_layer.cc.o.d"
  "CMakeFiles/test_nn.dir/nn/test_model.cc.o"
  "CMakeFiles/test_nn.dir/nn/test_model.cc.o.d"
  "CMakeFiles/test_nn.dir/nn/test_semantic.cc.o"
  "CMakeFiles/test_nn.dir/nn/test_semantic.cc.o.d"
  "CMakeFiles/test_nn.dir/nn/test_serialize.cc.o"
  "CMakeFiles/test_nn.dir/nn/test_serialize.cc.o.d"
  "CMakeFiles/test_nn.dir/nn/test_tensor.cc.o"
  "CMakeFiles/test_nn.dir/nn/test_tensor.cc.o.d"
  "test_nn"
  "test_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
