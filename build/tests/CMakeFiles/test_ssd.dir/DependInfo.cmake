
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/ssd/test_flash_controller.cc" "tests/CMakeFiles/test_ssd.dir/ssd/test_flash_controller.cc.o" "gcc" "tests/CMakeFiles/test_ssd.dir/ssd/test_flash_controller.cc.o.d"
  "/root/repo/tests/ssd/test_ftl.cc" "tests/CMakeFiles/test_ssd.dir/ssd/test_ftl.cc.o" "gcc" "tests/CMakeFiles/test_ssd.dir/ssd/test_ftl.cc.o.d"
  "/root/repo/tests/ssd/test_geometry.cc" "tests/CMakeFiles/test_ssd.dir/ssd/test_geometry.cc.o" "gcc" "tests/CMakeFiles/test_ssd.dir/ssd/test_geometry.cc.o.d"
  "/root/repo/tests/ssd/test_multiplex.cc" "tests/CMakeFiles/test_ssd.dir/ssd/test_multiplex.cc.o" "gcc" "tests/CMakeFiles/test_ssd.dir/ssd/test_multiplex.cc.o.d"
  "/root/repo/tests/ssd/test_ssd.cc" "tests/CMakeFiles/test_ssd.dir/ssd/test_ssd.cc.o" "gcc" "tests/CMakeFiles/test_ssd.dir/ssd/test_ssd.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/ssd/CMakeFiles/ds_ssd.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ds_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ds_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
