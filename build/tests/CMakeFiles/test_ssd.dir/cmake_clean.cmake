file(REMOVE_RECURSE
  "CMakeFiles/test_ssd.dir/ssd/test_flash_controller.cc.o"
  "CMakeFiles/test_ssd.dir/ssd/test_flash_controller.cc.o.d"
  "CMakeFiles/test_ssd.dir/ssd/test_ftl.cc.o"
  "CMakeFiles/test_ssd.dir/ssd/test_ftl.cc.o.d"
  "CMakeFiles/test_ssd.dir/ssd/test_geometry.cc.o"
  "CMakeFiles/test_ssd.dir/ssd/test_geometry.cc.o.d"
  "CMakeFiles/test_ssd.dir/ssd/test_multiplex.cc.o"
  "CMakeFiles/test_ssd.dir/ssd/test_multiplex.cc.o.d"
  "CMakeFiles/test_ssd.dir/ssd/test_ssd.cc.o"
  "CMakeFiles/test_ssd.dir/ssd/test_ssd.cc.o.d"
  "test_ssd"
  "test_ssd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_ssd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
