file(REMOVE_RECURSE
  "CMakeFiles/test_systolic.dir/systolic/test_dataflows.cc.o"
  "CMakeFiles/test_systolic.dir/systolic/test_dataflows.cc.o.d"
  "CMakeFiles/test_systolic.dir/systolic/test_dse.cc.o"
  "CMakeFiles/test_systolic.dir/systolic/test_dse.cc.o.d"
  "CMakeFiles/test_systolic.dir/systolic/test_report.cc.o"
  "CMakeFiles/test_systolic.dir/systolic/test_report.cc.o.d"
  "CMakeFiles/test_systolic.dir/systolic/test_systolic_sim.cc.o"
  "CMakeFiles/test_systolic.dir/systolic/test_systolic_sim.cc.o.d"
  "test_systolic"
  "test_systolic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_systolic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
