
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/systolic/test_dataflows.cc" "tests/CMakeFiles/test_systolic.dir/systolic/test_dataflows.cc.o" "gcc" "tests/CMakeFiles/test_systolic.dir/systolic/test_dataflows.cc.o.d"
  "/root/repo/tests/systolic/test_dse.cc" "tests/CMakeFiles/test_systolic.dir/systolic/test_dse.cc.o" "gcc" "tests/CMakeFiles/test_systolic.dir/systolic/test_dse.cc.o.d"
  "/root/repo/tests/systolic/test_report.cc" "tests/CMakeFiles/test_systolic.dir/systolic/test_report.cc.o" "gcc" "tests/CMakeFiles/test_systolic.dir/systolic/test_report.cc.o.d"
  "/root/repo/tests/systolic/test_systolic_sim.cc" "tests/CMakeFiles/test_systolic.dir/systolic/test_systolic_sim.cc.o" "gcc" "tests/CMakeFiles/test_systolic.dir/systolic/test_systolic_sim.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/systolic/CMakeFiles/ds_systolic.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/ds_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/ds_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ds_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
