
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/core/test_accel_pipeline.cc" "tests/CMakeFiles/test_core.dir/core/test_accel_pipeline.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_accel_pipeline.cc.o.d"
  "/root/repo/tests/core/test_deepstore.cc" "tests/CMakeFiles/test_core.dir/core/test_deepstore.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_deepstore.cc.o.d"
  "/root/repo/tests/core/test_dse_select.cc" "tests/CMakeFiles/test_core.dir/core/test_dse_select.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_dse_select.cc.o.d"
  "/root/repo/tests/core/test_metadata.cc" "tests/CMakeFiles/test_core.dir/core/test_metadata.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_metadata.cc.o.d"
  "/root/repo/tests/core/test_metadata_persistence.cc" "tests/CMakeFiles/test_core.dir/core/test_metadata_persistence.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_metadata_persistence.cc.o.d"
  "/root/repo/tests/core/test_nvme_front.cc" "tests/CMakeFiles/test_core.dir/core/test_nvme_front.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_nvme_front.cc.o.d"
  "/root/repo/tests/core/test_placement.cc" "tests/CMakeFiles/test_core.dir/core/test_placement.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_placement.cc.o.d"
  "/root/repo/tests/core/test_prefetch_queue.cc" "tests/CMakeFiles/test_core.dir/core/test_prefetch_queue.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_prefetch_queue.cc.o.d"
  "/root/repo/tests/core/test_query_cache.cc" "tests/CMakeFiles/test_core.dir/core/test_query_cache.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_query_cache.cc.o.d"
  "/root/repo/tests/core/test_query_model.cc" "tests/CMakeFiles/test_core.dir/core/test_query_model.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_query_model.cc.o.d"
  "/root/repo/tests/core/test_query_model_extra.cc" "tests/CMakeFiles/test_core.dir/core/test_query_model_extra.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_query_model_extra.cc.o.d"
  "/root/repo/tests/core/test_topk.cc" "tests/CMakeFiles/test_core.dir/core/test_topk.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_topk.cc.o.d"
  "/root/repo/tests/core/test_trace_replay.cc" "tests/CMakeFiles/test_core.dir/core/test_trace_replay.cc.o" "gcc" "tests/CMakeFiles/test_core.dir/core/test_trace_replay.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ds_core.dir/DependInfo.cmake"
  "/root/repo/build/src/host/CMakeFiles/ds_host.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/ds_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/systolic/CMakeFiles/ds_systolic.dir/DependInfo.cmake"
  "/root/repo/build/src/ssd/CMakeFiles/ds_ssd.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ds_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/ds_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/ds_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ds_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
