file(REMOVE_RECURSE
  "CMakeFiles/test_core.dir/core/test_accel_pipeline.cc.o"
  "CMakeFiles/test_core.dir/core/test_accel_pipeline.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_deepstore.cc.o"
  "CMakeFiles/test_core.dir/core/test_deepstore.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_dse_select.cc.o"
  "CMakeFiles/test_core.dir/core/test_dse_select.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_metadata.cc.o"
  "CMakeFiles/test_core.dir/core/test_metadata.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_metadata_persistence.cc.o"
  "CMakeFiles/test_core.dir/core/test_metadata_persistence.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_nvme_front.cc.o"
  "CMakeFiles/test_core.dir/core/test_nvme_front.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_placement.cc.o"
  "CMakeFiles/test_core.dir/core/test_placement.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_prefetch_queue.cc.o"
  "CMakeFiles/test_core.dir/core/test_prefetch_queue.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_query_cache.cc.o"
  "CMakeFiles/test_core.dir/core/test_query_cache.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_query_model.cc.o"
  "CMakeFiles/test_core.dir/core/test_query_model.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_query_model_extra.cc.o"
  "CMakeFiles/test_core.dir/core/test_query_model_extra.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_topk.cc.o"
  "CMakeFiles/test_core.dir/core/test_topk.cc.o.d"
  "CMakeFiles/test_core.dir/core/test_trace_replay.cc.o"
  "CMakeFiles/test_core.dir/core/test_trace_replay.cc.o.d"
  "test_core"
  "test_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
