file(REMOVE_RECURSE
  "CMakeFiles/test_workloads.dir/workloads/test_apps.cc.o"
  "CMakeFiles/test_workloads.dir/workloads/test_apps.cc.o.d"
  "CMakeFiles/test_workloads.dir/workloads/test_feature_gen.cc.o"
  "CMakeFiles/test_workloads.dir/workloads/test_feature_gen.cc.o.d"
  "CMakeFiles/test_workloads.dir/workloads/test_query_universe.cc.o"
  "CMakeFiles/test_workloads.dir/workloads/test_query_universe.cc.o.d"
  "CMakeFiles/test_workloads.dir/workloads/test_trace.cc.o"
  "CMakeFiles/test_workloads.dir/workloads/test_trace.cc.o.d"
  "test_workloads"
  "test_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
