
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/workloads/test_apps.cc" "tests/CMakeFiles/test_workloads.dir/workloads/test_apps.cc.o" "gcc" "tests/CMakeFiles/test_workloads.dir/workloads/test_apps.cc.o.d"
  "/root/repo/tests/workloads/test_feature_gen.cc" "tests/CMakeFiles/test_workloads.dir/workloads/test_feature_gen.cc.o" "gcc" "tests/CMakeFiles/test_workloads.dir/workloads/test_feature_gen.cc.o.d"
  "/root/repo/tests/workloads/test_query_universe.cc" "tests/CMakeFiles/test_workloads.dir/workloads/test_query_universe.cc.o" "gcc" "tests/CMakeFiles/test_workloads.dir/workloads/test_query_universe.cc.o.d"
  "/root/repo/tests/workloads/test_trace.cc" "tests/CMakeFiles/test_workloads.dir/workloads/test_trace.cc.o" "gcc" "tests/CMakeFiles/test_workloads.dir/workloads/test_trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/workloads/CMakeFiles/ds_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/ds_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ds_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
