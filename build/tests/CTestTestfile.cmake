# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
add_test(test_common "/root/repo/build/tests/test_common")
set_tests_properties(test_common PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;11;ds_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_sim "/root/repo/build/tests/test_sim")
set_tests_properties(test_sim PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;20;ds_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_nn "/root/repo/build/tests/test_nn")
set_tests_properties(test_nn PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;26;ds_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_systolic "/root/repo/build/tests/test_systolic")
set_tests_properties(test_systolic PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;36;ds_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_ssd "/root/repo/build/tests/test_ssd")
set_tests_properties(test_ssd PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;44;ds_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_energy "/root/repo/build/tests/test_energy")
set_tests_properties(test_energy PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;53;ds_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_workloads "/root/repo/build/tests/test_workloads")
set_tests_properties(test_workloads PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;58;ds_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_host "/root/repo/build/tests/test_host")
set_tests_properties(test_host PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;66;ds_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_core "/root/repo/build/tests/test_core")
set_tests_properties(test_core PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;71;ds_add_test;/root/repo/tests/CMakeLists.txt;0;")
add_test(test_integration "/root/repo/build/tests/test_integration")
set_tests_properties(test_integration PROPERTIES  _BACKTRACE_TRIPLES "/root/repo/tests/CMakeLists.txt;8;add_test;/root/repo/tests/CMakeLists.txt;88;ds_add_test;/root/repo/tests/CMakeLists.txt;0;")
