file(REMOVE_RECURSE
  "CMakeFiles/bench_fig06_dse_pes.dir/bench_fig06_dse_pes.cc.o"
  "CMakeFiles/bench_fig06_dse_pes.dir/bench_fig06_dse_pes.cc.o.d"
  "bench_fig06_dse_pes"
  "bench_fig06_dse_pes.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig06_dse_pes.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
