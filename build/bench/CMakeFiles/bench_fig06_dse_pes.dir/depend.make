# Empty dependencies file for bench_fig06_dse_pes.
# This may be replaced when dependencies are built.
