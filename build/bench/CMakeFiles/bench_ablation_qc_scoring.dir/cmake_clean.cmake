file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_qc_scoring.dir/bench_ablation_qc_scoring.cc.o"
  "CMakeFiles/bench_ablation_qc_scoring.dir/bench_ablation_qc_scoring.cc.o.d"
  "bench_ablation_qc_scoring"
  "bench_ablation_qc_scoring.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_qc_scoring.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
