# Empty compiler generated dependencies file for bench_ablation_qc_scoring.
# This may be replaced when dependencies are built.
