
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_ablation_dataflow.cc" "bench/CMakeFiles/bench_ablation_dataflow.dir/bench_ablation_dataflow.cc.o" "gcc" "bench/CMakeFiles/bench_ablation_dataflow.dir/bench_ablation_dataflow.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/ds_core.dir/DependInfo.cmake"
  "/root/repo/build/src/host/CMakeFiles/ds_host.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/ds_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/systolic/CMakeFiles/ds_systolic.dir/DependInfo.cmake"
  "/root/repo/build/src/ssd/CMakeFiles/ds_ssd.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ds_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/ds_workloads.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/ds_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/common/CMakeFiles/ds_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
