# Empty dependencies file for bench_dse_budget.
# This may be replaced when dependencies are built.
