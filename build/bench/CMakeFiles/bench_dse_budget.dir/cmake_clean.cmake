file(REMOVE_RECURSE
  "CMakeFiles/bench_dse_budget.dir/bench_dse_budget.cc.o"
  "CMakeFiles/bench_dse_budget.dir/bench_dse_budget.cc.o.d"
  "bench_dse_budget"
  "bench_dse_budget.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_dse_budget.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
