# Empty dependencies file for bench_ablation_shared_l2.
# This may be replaced when dependencies are built.
