file(REMOVE_RECURSE
  "CMakeFiles/bench_ablation_shared_l2.dir/bench_ablation_shared_l2.cc.o"
  "CMakeFiles/bench_ablation_shared_l2.dir/bench_ablation_shared_l2.cc.o.d"
  "bench_ablation_shared_l2"
  "bench_ablation_shared_l2.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_ablation_shared_l2.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
