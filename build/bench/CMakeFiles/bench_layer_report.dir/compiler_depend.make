# Empty compiler generated dependencies file for bench_layer_report.
# This may be replaced when dependencies are built.
