file(REMOVE_RECURSE
  "CMakeFiles/bench_layer_report.dir/bench_layer_report.cc.o"
  "CMakeFiles/bench_layer_report.dir/bench_layer_report.cc.o.d"
  "bench_layer_report"
  "bench_layer_report.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_layer_report.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
