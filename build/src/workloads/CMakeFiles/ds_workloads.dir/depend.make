# Empty dependencies file for ds_workloads.
# This may be replaced when dependencies are built.
