file(REMOVE_RECURSE
  "libds_workloads.a"
)
