file(REMOVE_RECURSE
  "CMakeFiles/ds_workloads.dir/apps.cc.o"
  "CMakeFiles/ds_workloads.dir/apps.cc.o.d"
  "CMakeFiles/ds_workloads.dir/feature_gen.cc.o"
  "CMakeFiles/ds_workloads.dir/feature_gen.cc.o.d"
  "CMakeFiles/ds_workloads.dir/query_universe.cc.o"
  "CMakeFiles/ds_workloads.dir/query_universe.cc.o.d"
  "CMakeFiles/ds_workloads.dir/trace.cc.o"
  "CMakeFiles/ds_workloads.dir/trace.cc.o.d"
  "libds_workloads.a"
  "libds_workloads.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_workloads.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
