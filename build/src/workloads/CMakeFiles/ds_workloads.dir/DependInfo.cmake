
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workloads/apps.cc" "src/workloads/CMakeFiles/ds_workloads.dir/apps.cc.o" "gcc" "src/workloads/CMakeFiles/ds_workloads.dir/apps.cc.o.d"
  "/root/repo/src/workloads/feature_gen.cc" "src/workloads/CMakeFiles/ds_workloads.dir/feature_gen.cc.o" "gcc" "src/workloads/CMakeFiles/ds_workloads.dir/feature_gen.cc.o.d"
  "/root/repo/src/workloads/query_universe.cc" "src/workloads/CMakeFiles/ds_workloads.dir/query_universe.cc.o" "gcc" "src/workloads/CMakeFiles/ds_workloads.dir/query_universe.cc.o.d"
  "/root/repo/src/workloads/trace.cc" "src/workloads/CMakeFiles/ds_workloads.dir/trace.cc.o" "gcc" "src/workloads/CMakeFiles/ds_workloads.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ds_common.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/ds_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
