file(REMOVE_RECURSE
  "CMakeFiles/ds_common.dir/logging.cc.o"
  "CMakeFiles/ds_common.dir/logging.cc.o.d"
  "CMakeFiles/ds_common.dir/rng.cc.o"
  "CMakeFiles/ds_common.dir/rng.cc.o.d"
  "CMakeFiles/ds_common.dir/stats.cc.o"
  "CMakeFiles/ds_common.dir/stats.cc.o.d"
  "CMakeFiles/ds_common.dir/table.cc.o"
  "CMakeFiles/ds_common.dir/table.cc.o.d"
  "libds_common.a"
  "libds_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
