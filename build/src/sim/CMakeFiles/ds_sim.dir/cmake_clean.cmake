file(REMOVE_RECURSE
  "CMakeFiles/ds_sim.dir/event_queue.cc.o"
  "CMakeFiles/ds_sim.dir/event_queue.cc.o.d"
  "libds_sim.a"
  "libds_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
