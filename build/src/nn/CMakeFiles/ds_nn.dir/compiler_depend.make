# Empty compiler generated dependencies file for ds_nn.
# This may be replaced when dependencies are built.
