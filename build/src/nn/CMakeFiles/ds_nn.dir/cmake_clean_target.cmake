file(REMOVE_RECURSE
  "libds_nn.a"
)
