file(REMOVE_RECURSE
  "CMakeFiles/ds_nn.dir/executor.cc.o"
  "CMakeFiles/ds_nn.dir/executor.cc.o.d"
  "CMakeFiles/ds_nn.dir/layer.cc.o"
  "CMakeFiles/ds_nn.dir/layer.cc.o.d"
  "CMakeFiles/ds_nn.dir/model.cc.o"
  "CMakeFiles/ds_nn.dir/model.cc.o.d"
  "CMakeFiles/ds_nn.dir/semantic.cc.o"
  "CMakeFiles/ds_nn.dir/semantic.cc.o.d"
  "CMakeFiles/ds_nn.dir/serialize.cc.o"
  "CMakeFiles/ds_nn.dir/serialize.cc.o.d"
  "CMakeFiles/ds_nn.dir/tensor.cc.o"
  "CMakeFiles/ds_nn.dir/tensor.cc.o.d"
  "CMakeFiles/ds_nn.dir/weights.cc.o"
  "CMakeFiles/ds_nn.dir/weights.cc.o.d"
  "libds_nn.a"
  "libds_nn.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_nn.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
