# Empty compiler generated dependencies file for ds_host.
# This may be replaced when dependencies are built.
