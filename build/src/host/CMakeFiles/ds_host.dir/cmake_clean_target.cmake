file(REMOVE_RECURSE
  "libds_host.a"
)
