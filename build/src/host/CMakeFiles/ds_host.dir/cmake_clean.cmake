file(REMOVE_RECURSE
  "CMakeFiles/ds_host.dir/baseline.cc.o"
  "CMakeFiles/ds_host.dir/baseline.cc.o.d"
  "libds_host.a"
  "libds_host.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
