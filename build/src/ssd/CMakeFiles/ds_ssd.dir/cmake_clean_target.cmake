file(REMOVE_RECURSE
  "libds_ssd.a"
)
