
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/ssd/flash_controller.cc" "src/ssd/CMakeFiles/ds_ssd.dir/flash_controller.cc.o" "gcc" "src/ssd/CMakeFiles/ds_ssd.dir/flash_controller.cc.o.d"
  "/root/repo/src/ssd/ftl.cc" "src/ssd/CMakeFiles/ds_ssd.dir/ftl.cc.o" "gcc" "src/ssd/CMakeFiles/ds_ssd.dir/ftl.cc.o.d"
  "/root/repo/src/ssd/ssd.cc" "src/ssd/CMakeFiles/ds_ssd.dir/ssd.cc.o" "gcc" "src/ssd/CMakeFiles/ds_ssd.dir/ssd.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ds_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ds_sim.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
