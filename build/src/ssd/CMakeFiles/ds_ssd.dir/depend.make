# Empty dependencies file for ds_ssd.
# This may be replaced when dependencies are built.
