file(REMOVE_RECURSE
  "CMakeFiles/ds_ssd.dir/flash_controller.cc.o"
  "CMakeFiles/ds_ssd.dir/flash_controller.cc.o.d"
  "CMakeFiles/ds_ssd.dir/ftl.cc.o"
  "CMakeFiles/ds_ssd.dir/ftl.cc.o.d"
  "CMakeFiles/ds_ssd.dir/ssd.cc.o"
  "CMakeFiles/ds_ssd.dir/ssd.cc.o.d"
  "libds_ssd.a"
  "libds_ssd.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_ssd.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
