# Empty compiler generated dependencies file for ds_systolic.
# This may be replaced when dependencies are built.
