
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/systolic/dse.cc" "src/systolic/CMakeFiles/ds_systolic.dir/dse.cc.o" "gcc" "src/systolic/CMakeFiles/ds_systolic.dir/dse.cc.o.d"
  "/root/repo/src/systolic/report.cc" "src/systolic/CMakeFiles/ds_systolic.dir/report.cc.o" "gcc" "src/systolic/CMakeFiles/ds_systolic.dir/report.cc.o.d"
  "/root/repo/src/systolic/systolic_sim.cc" "src/systolic/CMakeFiles/ds_systolic.dir/systolic_sim.cc.o" "gcc" "src/systolic/CMakeFiles/ds_systolic.dir/systolic_sim.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ds_common.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/ds_nn.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
