file(REMOVE_RECURSE
  "libds_systolic.a"
)
