file(REMOVE_RECURSE
  "CMakeFiles/ds_systolic.dir/dse.cc.o"
  "CMakeFiles/ds_systolic.dir/dse.cc.o.d"
  "CMakeFiles/ds_systolic.dir/report.cc.o"
  "CMakeFiles/ds_systolic.dir/report.cc.o.d"
  "CMakeFiles/ds_systolic.dir/systolic_sim.cc.o"
  "CMakeFiles/ds_systolic.dir/systolic_sim.cc.o.d"
  "libds_systolic.a"
  "libds_systolic.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_systolic.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
