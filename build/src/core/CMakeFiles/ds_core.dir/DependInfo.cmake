
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/accel_pipeline.cc" "src/core/CMakeFiles/ds_core.dir/accel_pipeline.cc.o" "gcc" "src/core/CMakeFiles/ds_core.dir/accel_pipeline.cc.o.d"
  "/root/repo/src/core/deepstore.cc" "src/core/CMakeFiles/ds_core.dir/deepstore.cc.o" "gcc" "src/core/CMakeFiles/ds_core.dir/deepstore.cc.o.d"
  "/root/repo/src/core/dse_select.cc" "src/core/CMakeFiles/ds_core.dir/dse_select.cc.o" "gcc" "src/core/CMakeFiles/ds_core.dir/dse_select.cc.o.d"
  "/root/repo/src/core/metadata.cc" "src/core/CMakeFiles/ds_core.dir/metadata.cc.o" "gcc" "src/core/CMakeFiles/ds_core.dir/metadata.cc.o.d"
  "/root/repo/src/core/nvme_front.cc" "src/core/CMakeFiles/ds_core.dir/nvme_front.cc.o" "gcc" "src/core/CMakeFiles/ds_core.dir/nvme_front.cc.o.d"
  "/root/repo/src/core/placement.cc" "src/core/CMakeFiles/ds_core.dir/placement.cc.o" "gcc" "src/core/CMakeFiles/ds_core.dir/placement.cc.o.d"
  "/root/repo/src/core/prefetch_queue.cc" "src/core/CMakeFiles/ds_core.dir/prefetch_queue.cc.o" "gcc" "src/core/CMakeFiles/ds_core.dir/prefetch_queue.cc.o.d"
  "/root/repo/src/core/query_cache.cc" "src/core/CMakeFiles/ds_core.dir/query_cache.cc.o" "gcc" "src/core/CMakeFiles/ds_core.dir/query_cache.cc.o.d"
  "/root/repo/src/core/query_model.cc" "src/core/CMakeFiles/ds_core.dir/query_model.cc.o" "gcc" "src/core/CMakeFiles/ds_core.dir/query_model.cc.o.d"
  "/root/repo/src/core/topk.cc" "src/core/CMakeFiles/ds_core.dir/topk.cc.o" "gcc" "src/core/CMakeFiles/ds_core.dir/topk.cc.o.d"
  "/root/repo/src/core/trace_replay.cc" "src/core/CMakeFiles/ds_core.dir/trace_replay.cc.o" "gcc" "src/core/CMakeFiles/ds_core.dir/trace_replay.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/ds_common.dir/DependInfo.cmake"
  "/root/repo/build/src/sim/CMakeFiles/ds_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/nn/CMakeFiles/ds_nn.dir/DependInfo.cmake"
  "/root/repo/build/src/systolic/CMakeFiles/ds_systolic.dir/DependInfo.cmake"
  "/root/repo/build/src/ssd/CMakeFiles/ds_ssd.dir/DependInfo.cmake"
  "/root/repo/build/src/energy/CMakeFiles/ds_energy.dir/DependInfo.cmake"
  "/root/repo/build/src/workloads/CMakeFiles/ds_workloads.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
