file(REMOVE_RECURSE
  "CMakeFiles/ds_core.dir/accel_pipeline.cc.o"
  "CMakeFiles/ds_core.dir/accel_pipeline.cc.o.d"
  "CMakeFiles/ds_core.dir/deepstore.cc.o"
  "CMakeFiles/ds_core.dir/deepstore.cc.o.d"
  "CMakeFiles/ds_core.dir/dse_select.cc.o"
  "CMakeFiles/ds_core.dir/dse_select.cc.o.d"
  "CMakeFiles/ds_core.dir/metadata.cc.o"
  "CMakeFiles/ds_core.dir/metadata.cc.o.d"
  "CMakeFiles/ds_core.dir/nvme_front.cc.o"
  "CMakeFiles/ds_core.dir/nvme_front.cc.o.d"
  "CMakeFiles/ds_core.dir/placement.cc.o"
  "CMakeFiles/ds_core.dir/placement.cc.o.d"
  "CMakeFiles/ds_core.dir/prefetch_queue.cc.o"
  "CMakeFiles/ds_core.dir/prefetch_queue.cc.o.d"
  "CMakeFiles/ds_core.dir/query_cache.cc.o"
  "CMakeFiles/ds_core.dir/query_cache.cc.o.d"
  "CMakeFiles/ds_core.dir/query_model.cc.o"
  "CMakeFiles/ds_core.dir/query_model.cc.o.d"
  "CMakeFiles/ds_core.dir/topk.cc.o"
  "CMakeFiles/ds_core.dir/topk.cc.o.d"
  "CMakeFiles/ds_core.dir/trace_replay.cc.o"
  "CMakeFiles/ds_core.dir/trace_replay.cc.o.d"
  "libds_core.a"
  "libds_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
