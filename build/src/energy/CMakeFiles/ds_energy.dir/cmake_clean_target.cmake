file(REMOVE_RECURSE
  "libds_energy.a"
)
