file(REMOVE_RECURSE
  "CMakeFiles/ds_energy.dir/energy_model.cc.o"
  "CMakeFiles/ds_energy.dir/energy_model.cc.o.d"
  "libds_energy.a"
  "libds_energy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/ds_energy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
