# Empty compiler generated dependencies file for ds_energy.
# This may be replaced when dependencies are built.
