/**
 * @file
 * Quickstart: the smallest end-to-end DeepStore program.
 *
 *   1. build an in-storage feature database (writeDB),
 *   2. register a similarity-comparison network (loadModel),
 *   3. submit an intelligent query asynchronously (query),
 *   4. poll its progress and fetch the top-K results
 *      (poll / drain / getResults).
 *
 * Build:  cmake -B build -G Ninja && cmake --build build
 * Run:    ./build/examples/quickstart
 */

#include <cstdio>

#include "core/deepstore.h"
#include "nn/semantic.h"
#include "workloads/feature_gen.h"

using namespace deepstore;

int
main()
{
    // A DeepStore SSD with the paper's default geometry (1 TB, 32
    // channels), serving queries from the channel-level accelerators.
    core::DeepStoreConfig config;
    config.defaultLevel = core::Level::ChannelLevel;
    core::DeepStore store(config);

    // --- 1. write a feature database --------------------------------
    // 2,000 synthetic 256-float feature vectors drawn around 20
    // latent topics (stand-ins for extracted image embeddings).
    const std::int64_t dim = 256;
    workloads::FeatureGenerator gen(dim, /*topics=*/20, /*seed=*/42);
    auto source =
        std::make_shared<core::GeneratedFeatureSource>(gen, 2000);
    std::uint64_t db = store.writeDB(source);
    std::printf("wrote db %llu: %llu features, %llu B each\n",
                (unsigned long long)db,
                (unsigned long long)store.databaseInfo(db).numFeatures,
                (unsigned long long)store.databaseInfo(db).featureBytes);

    // --- 2. register a similarity-comparison network ----------------
    // A two-branch SCN fused by element-wise multiply; the crafted
    // weights make the score a monotone similarity proxy.
    nn::Model scn("quickstart-scn", dim, false);
    scn.addLayer(nn::Layer::elementWise("fuse", nn::EwOp::Multiply,
                                        dim));
    scn.addLayer(nn::Layer::fc("fc1", dim, 64));
    scn.addLayer(nn::Layer::fc("fc2", 64, 2, nn::Activation::None));
    std::uint64_t model = store.loadModel(
        nn::ModelBundle{scn, nn::semanticWeights(scn)});

    // --- 3. query ----------------------------------------------------
    // Ask for items similar to a fresh sample of topic 7. query()
    // validates and returns a query id immediately; the scan runs in
    // simulated time while the host is free to do other work (or to
    // submit more queries — they interleave on the accelerators).
    std::vector<float> qfv = gen.featureForTopic(7, 123456);
    std::uint64_t qid = store.query(qfv, /*k=*/5, model, db,
                                    /*db_start=*/0, /*db_end=*/0);
    std::printf("\nsubmitted query %llu (state %s, %zu in flight)\n",
                (unsigned long long)qid,
                core::toString(*store.poll(qid)), store.inFlight());

    // --- 4. results ---------------------------------------------------
    // Advance the device clock until the query completes. (Callers
    // that want the old blocking behavior can use querySync().)
    store.drain();
    std::printf("query %llu is %s\n", (unsigned long long)qid,
                core::toString(*store.poll(qid)));
    const core::QueryResult &res = store.getResults(qid);
    std::printf("\nscanned %llu features in %.3f ms (simulated, "
                "channel-level accelerators)\n",
                (unsigned long long)res.featuresScanned,
                res.latencySeconds * 1e3);
    std::printf("top-%zu results:\n", res.topK.size());
    int correct = 0;
    for (const auto &r : res.topK) {
        std::uint64_t topic = gen.topicOf(r.featureId);
        correct += topic == 7;
        std::printf("  feature %5llu  score %.4f  topic %llu  "
                    "flash page (ObjectID) %llu\n",
                    (unsigned long long)r.featureId, (double)r.score,
                    (unsigned long long)topic,
                    (unsigned long long)r.objectId);
    }
    std::printf("%d/%zu results share the query topic\n", correct,
                res.topK.size());
    return 0;
}
