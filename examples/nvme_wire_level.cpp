/**
 * @file
 * Wire-level example: drive DeepStore exactly the way a host driver
 * would (§4.7.2) — vendor-specific NVMe commands through a bounded
 * submission queue, data passed via registered host buffers, errors
 * returned as completion status codes rather than exceptions.
 */

#include <cstdio>
#include <cstring>

#include "core/nvme_front.h"
#include "nn/semantic.h"
#include "nn/serialize.h"
#include "workloads/feature_gen.h"

using namespace deepstore;

namespace {

const char *
statusName(core::NvmeStatus s)
{
    switch (s) {
      case core::NvmeStatus::Success: return "SUCCESS";
      case core::NvmeStatus::InvalidField: return "INVALID_FIELD";
      case core::NvmeStatus::InternalError: return "INTERNAL_ERROR";
      case core::NvmeStatus::CommandAborted: return "ABORTED";
      case core::NvmeStatus::InProgress: return "IN_PROGRESS";
      case core::NvmeStatus::DegradedSuccess:
        return "DEGRADED_SUCCESS";
      case core::NvmeStatus::DeadlineExceeded:
        return "DEADLINE_EXCEEDED";
      case core::NvmeStatus::Aborted: return "QUERY_ABORTED";
    }
    return "?";
}

core::NvmeCompletion
run(core::NvmeFrontEnd &nvme, const core::NvmeCommand &cmd,
    const char *what)
{
    if (!nvme.submit(cmd)) {
        std::printf("  [cid %u] %-10s -> queue full, backing off\n",
                    cmd.cid, what);
        nvme.process();
        nvme.submit(cmd);
    }
    nvme.process();
    // Query completions post asynchronously when the in-storage
    // scheduler finishes; pump() is the host's interrupt wait.
    nvme.pump();
    auto done = *nvme.pollCompletion();
    std::printf("  [cid %u] %-10s -> %s (result=%llu)\n", done.cid,
                what, statusName(done.status),
                (unsigned long long)done.result);
    return done;
}

} // namespace

int
main()
{
    core::DeepStore store(core::DeepStoreConfig{});
    core::NvmeFrontEnd nvme(store, /*sq_depth=*/8);
    std::printf("NVMe front end up: SQ depth %zu\n\n",
                nvme.submissionDepth());

    // Host side: build a small database in "host memory".
    const std::int64_t dim = 128;
    workloads::FeatureGenerator gen(dim, 10, 77);
    std::vector<float> flat;
    for (std::uint64_t i = 0; i < 400; ++i) {
        auto f = gen.featureAt(i);
        flat.insert(flat.end(), f.begin(), f.end());
    }

    // WriteDB (opcode 0xC0).
    core::NvmeCommand wdb;
    wdb.opcode = core::NvmeOpcode::WriteDB;
    wdb.cid = 1;
    wdb.prp = nvme.buffers().add(std::move(flat));
    wdb.cdw[0] = dim;
    std::uint64_t db = run(nvme, wdb, "WriteDB").result;

    // LoadModel (0xC3): serialized SCN packed into a buffer.
    nn::Model scn("wire-scn", dim, false);
    scn.addLayer(nn::Layer::elementWise("fuse", nn::EwOp::Multiply,
                                        dim));
    scn.addLayer(nn::Layer::fc("fc", dim, 2, nn::Activation::None));
    auto blob = nn::serializeModel(scn, nn::semanticWeights(scn));
    std::vector<float> packed((blob.size() + 3) / 4, 0.0f);
    std::memcpy(packed.data(), blob.data(), blob.size());
    core::NvmeCommand lm;
    lm.opcode = core::NvmeOpcode::LoadModel;
    lm.cid = 2;
    lm.prp = nvme.buffers().add(std::move(packed));
    lm.cdw[0] = blob.size();
    std::uint64_t model = run(nvme, lm, "LoadModel").result;

    // Query (0xC4) for a fresh topic-4 feature. The command is
    // accepted immediately; its completion posts only when the scan
    // finishes in the device.
    core::NvmeCommand q;
    q.opcode = core::NvmeOpcode::Query;
    q.cid = 3;
    q.prp = nvme.buffers().add(gen.featureForTopic(4, 9999));
    q.cdw[0] = 5;
    q.cdw[1] = model;
    q.cdw[2] = db;
    nvme.submit(q);
    nvme.process();
    std::uint64_t qid = *nvme.queryIdForCid(3);

    // Poll too early: GetResults (0xC5) answers IN_PROGRESS while
    // the scan is still running.
    core::NvmeCommand g;
    g.opcode = core::NvmeOpcode::GetResults;
    g.cid = 4;
    g.prp = nvme.buffers().add({});
    g.cdw[0] = qid;
    nvme.submit(g);
    nvme.process();
    auto early = *nvme.pollCompletion();
    std::printf("  [cid %u] %-10s -> %s (scan still running)\n",
                early.cid, "GetResults", statusName(early.status));

    // Wait for the interrupt, reap the Query completion, retry.
    nvme.pump();
    auto qdone = *nvme.pollCompletion();
    std::printf("  [cid %u] %-10s -> %s (result=%llu)\n", qdone.cid,
                "Query", statusName(qdone.status),
                (unsigned long long)qdone.result);
    g.cid = 5;
    run(nvme, g, "GetResults");
    const auto *out = nvme.buffers().find(g.prp);
    std::printf("\ntop-5 (feature id, score, topic):\n");
    for (std::size_t i = 0; i + 1 < out->size(); i += 2) {
        auto fid = static_cast<std::uint64_t>((*out)[i]);
        std::printf("  %5llu  %.4f  topic %llu\n",
                    (unsigned long long)fid, (double)(*out)[i + 1],
                    (unsigned long long)gen.topicOf(fid));
    }

    // Error handling at the wire: querying a bogus database returns a
    // status code, the device never crashes the host.
    std::printf("\nerror path:\n");
    core::NvmeCommand bad = q;
    bad.cid = 6;
    bad.cdw[2] = 4242; // no such db
    run(nvme, bad, "Query");
    return 0;
}
