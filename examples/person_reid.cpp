/**
 * @file
 * Person re-identification (the paper's ReId workload, Table 1):
 * find the same person across a gallery of surveillance shots.
 *
 * Demonstrates:
 *   - the real ReId SCN topology (element-wise difference + 2 conv +
 *     2 FC over 44 KB features) with crafted semantic weights;
 *   - accelerator-level selection per query (channel vs SSD level —
 *     the chip level cannot run convolutional models, §6.2);
 *   - the modeled speedup over the GPU+SSD baseline.
 */

#include <cstdio>

#include "core/deepstore.h"
#include "host/baseline.h"
#include "nn/semantic.h"
#include "workloads/apps.h"
#include "workloads/feature_gen.h"

using namespace deepstore;

int
main()
{
    auto app = workloads::makeApp(workloads::AppId::ReId);
    std::printf("== %s: %s ==\n", app.name.c_str(),
                app.description.c_str());
    std::printf("SCN: %zu layers, %.1f MFLOPs, %.1f MB weights, "
                "%.0f KB features\n\n",
                app.scn.numLayers(),
                (double)app.scn.totalFlops() / 1e6,
                (double)app.scn.totalWeightBytes() / 1e6,
                (double)app.featureBytes() / 1024);

    core::DeepStore store(core::DeepStoreConfig{});

    // Gallery: 60 identities x 5 shots = 300 features of 44 KB.
    const std::uint64_t identities = 60, shots = 5;
    workloads::FeatureGenerator gen(app.scn.featureDim(), identities,
                                    2026, /*noise=*/0.15);
    std::vector<std::vector<float>> gallery;
    for (std::uint64_t p = 0; p < identities; ++p)
        for (std::uint64_t s = 0; s < shots; ++s)
            gallery.push_back(gen.featureForTopic(p, p * 1000 + s));
    std::uint64_t db =
        store.writeDB(std::make_shared<core::VectorFeatureSource>(
            gallery, app.scn.featureDim()));

    std::uint64_t model = store.loadModel(
        nn::ModelBundle{app.scn, nn::semanticWeights(app.scn)});

    // Query: a new, unseen shot of identity 17.
    const std::uint64_t suspect = 17;
    auto qfv = gen.featureForTopic(suspect, 999999);

    std::printf("querying %llu-shot gallery for identity %llu...\n",
                (unsigned long long)(identities * shots),
                (unsigned long long)suspect);
    for (core::Level level :
         {core::Level::ChannelLevel, core::Level::SsdLevel}) {
        std::uint64_t qid =
            store.querySync(qfv, 5, model, db, 0, 0, level);
        const auto &res = store.getResults(qid);
        int correct = 0;
        for (const auto &r : res.topK)
            correct += (r.featureId / shots) == suspect;
        std::printf("  %-7s level: %.3f ms simulated, top-5 "
                    "identity precision %d/5\n",
                    core::toString(level), res.latencySeconds * 1e3,
                    correct);
    }

    // Chip-level placement cannot execute ReId (paper §6.2).
    try {
        store.querySync(qfv, 5, model, db, 0, 0, core::Level::ChipLevel);
        std::printf("  chip level: unexpectedly succeeded?\n");
    } catch (const FatalError &e) {
        std::printf("  chip    level: rejected as expected (%s)\n",
                    e.what());
    }

    // Scale-out projection: what the paper's evaluation measures.
    host::GpuSsdSystem gpu(host::voltaSpec());
    core::DeepStoreModel analytic{ssd::FlashParams{}};
    const std::uint64_t big_db = 500'000; // a 22 GB gallery
    double t_gpu = gpu.scanSeconds(app, big_db);
    double t_ds =
        analytic.scanSeconds(core::Level::ChannelLevel, app, big_db);
    std::printf("\nprojection to a %llu-person gallery (%.0f GB):\n",
                (unsigned long long)(big_db / shots),
                (double)(big_db * app.featureBytes()) / 1e9);
    std::printf("  GPU+SSD baseline: %.2f s per query\n", t_gpu);
    std::printf("  DeepStore (channel level): %.2f s per query "
                "(%.1fx faster)\n",
                t_ds, t_gpu / t_ds);
    return 0;
}
