/**
 * @file
 * Style-based music retrieval (the paper's MIR workload): find
 * tracks matching a query clip's style. Demonstrates the database
 * lifecycle APIs — writeDB, appendDB for newly ingested tracks,
 * readDB for raw feature export — plus per-level latency/energy
 * reporting for the same query.
 */

#include <cstdio>

#include "core/deepstore.h"
#include "host/baseline.h"
#include "nn/semantic.h"
#include "workloads/apps.h"
#include "workloads/feature_gen.h"

using namespace deepstore;

int
main()
{
    auto app = workloads::makeApp(workloads::AppId::MIR);
    std::printf("== %s: %s ==\n\n", app.name.c_str(),
                app.description.c_str());

    core::DeepStore store(core::DeepStoreConfig{});

    // Catalog: 1,200 tracks across 24 styles.
    const std::uint64_t styles = 24;
    workloads::FeatureGenerator catalog(app.scn.featureDim(), styles,
                                        99, /*noise=*/0.18);
    std::uint64_t db = store.writeDB(
        std::make_shared<core::GeneratedFeatureSource>(catalog, 1200));
    std::uint64_t model = store.loadModel(
        nn::ModelBundle{app.scn, nn::semanticWeights(app.scn)});

    // New releases arrive: append 300 more tracks (same generator,
    // later indices) — DeepStore buffers and extends the striped
    // layout (§4.7.2).
    std::vector<std::vector<float>> releases;
    for (std::uint64_t i = 0; i < 300; ++i)
        releases.push_back(catalog.featureAt(1200 + i));
    store.appendDB(db, std::make_shared<core::VectorFeatureSource>(
                           releases, app.scn.featureDim()));
    std::printf("catalog: %llu tracks after append\n",
                (unsigned long long)store.databaseInfo(db).numFeatures);

    // Export a few raw features (readDB) — e.g., for offline
    // re-clustering.
    auto exported = store.readDB(db, 0, 4);
    std::printf("readDB exported %zu features of %zu floats\n\n",
                exported.size(), exported[0].size());

    // Query: a clip in style 9.
    auto qfv = catalog.featureForTopic(9, 31337);
    std::printf("query: 'more like this' for a style-%d clip\n", 9);
    for (core::Level level :
         {core::Level::ChannelLevel, core::Level::ChipLevel,
          core::Level::SsdLevel}) {
        std::uint64_t qid =
            store.querySync(qfv, 5, model, db, 0, 0, level);
        const auto &res = store.getResults(qid);
        int correct = 0;
        for (const auto &r : res.topK)
            correct += catalog.topicOf(r.featureId) == 9;
        std::printf("  %-7s level: %8.1f us, style precision %d/5\n",
                    core::toString(level), res.latencySeconds * 1e6,
                    correct);
    }

    // Per-level energy for a full catalog scan (analytic model).
    core::DeepStoreModel analytic{ssd::FlashParams{}};
    std::printf("\nenergy per scanned track (modeled):\n");
    for (core::Level level :
         {core::Level::SsdLevel, core::Level::ChannelLevel,
          core::Level::ChipLevel}) {
        auto p = analytic.evaluate(level, app);
        std::printf("  %-7s level: %6.2f uJ/track "
                    "(compute %.0f%% / memory %.0f%% / flash %.0f%%)\n",
                    core::toString(level),
                    p.energyPerFeature.total() * 1e6,
                    p.energyPerFeature.computeJ /
                        p.energyPerFeature.total() * 100,
                    p.energyPerFeature.memoryJ /
                        p.energyPerFeature.total() * 100,
                    p.energyPerFeature.flashJ /
                        p.energyPerFeature.total() * 100);
    }

    host::GpuSsdSystem gpu(host::voltaSpec());
    std::printf("\nGPU+SSD baseline would spend %.2f uJ per track "
                "(%.1fx more than channel level)\n",
                gpu.perFeatureSeconds(app) * gpu.powerW() * 1e6,
                gpu.perFeatureSeconds(app) * gpu.powerW() /
                    analytic
                        .evaluate(core::Level::ChannelLevel, app)
                        .energyPerFeature.total());
    return 0;
}
