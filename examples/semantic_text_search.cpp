/**
 * @file
 * Text-based image retrieval with the similarity Query Cache (the
 * paper's TIR workload plus §4.6): users issue sentence queries, many
 * of which are paraphrases of each other ("a brown dog is running in
 * the sand" vs "a brown dog plays at the beach"). The QCN detects the
 * semantic near-duplicates and serves them from the cache instead of
 * re-scanning the image database.
 *
 * Demonstrates: setQC(), cache hits on *similar* (not just identical)
 * queries, miss-rate and latency effects of the error threshold.
 */

#include <cstdio>

#include "core/deepstore.h"
#include "nn/semantic.h"
#include "workloads/apps.h"
#include "workloads/feature_gen.h"

using namespace deepstore;

int
main()
{
    auto app = workloads::makeApp(workloads::AppId::TIR);
    std::printf("== %s: %s ==\n\n", app.name.c_str(),
                app.description.c_str());

    core::DeepStore store(core::DeepStoreConfig{});

    // Image database: 1,500 embeddings over 40 caption topics.
    workloads::FeatureGenerator images(app.scn.featureDim(), 40, 7,
                                       /*noise=*/0.2);
    std::uint64_t db = store.writeDB(
        std::make_shared<core::GeneratedFeatureSource>(images, 1500));

    std::uint64_t scn = store.loadModel(
        nn::ModelBundle{app.scn, nn::semanticWeights(app.scn)});
    std::uint64_t qcn = store.loadModel(
        nn::ModelBundle{app.qcn, nn::semanticWeights(app.qcn)});

    // Configure the Query Cache: 32 entries, 12% error threshold,
    // QCN accuracy 0.97 (Universal-Sentence-Encoder class, §6.5).
    store.setQC(qcn, /*threshold=*/0.12, /*qcn_accuracy=*/0.97,
                /*capacity=*/32);

    // A query stream with paraphrases: topic t stands for a caption
    // meaning; different jitter seeds are different phrasings.
    struct UserQuery
    {
        std::uint64_t topic;
        std::uint64_t phrasing;
        const char *text;
    };
    const UserQuery stream[] = {
        {5, 1, "a brown dog is running in the sand"},
        {12, 1, "two people riding bikes downhill"},
        {5, 2, "a brown dog plays at the beach"},
        {5, 3, "dog running on a sandy beach"},
        {12, 2, "cyclists descending a mountain road"},
        {29, 1, "a red kitchen with white cabinets"},
        {5, 4, "puppy sprinting across the dunes"},
        {12, 3, "two bikers going down a hill"},
    };

    std::printf("%-45s %-6s %10s %8s\n", "query", "cache",
                "latency(us)", "scanned");
    double hit_lat = 0, miss_lat = 0;
    int hits = 0, misses = 0;
    for (const auto &uq : stream) {
        auto qfv = images.featureForTopic(uq.topic,
                                          uq.phrasing * 7919 + 13);
        std::uint64_t qid = store.querySync(qfv, 5, scn, db, 0, 0);
        const auto &res = store.getResults(qid);
        std::printf("%-45s %-6s %10.1f %8llu\n", uq.text,
                    res.cacheHit ? "HIT" : "miss",
                    res.latencySeconds * 1e6,
                    (unsigned long long)res.featuresScanned);
        (res.cacheHit ? hit_lat : miss_lat) += res.latencySeconds;
        (res.cacheHit ? hits : misses) += 1;
    }

    std::printf("\n%d hits / %d misses; average hit latency %.1f us "
                "vs miss %.1f us (%.0fx cheaper)\n",
                hits, misses, hits ? hit_lat / hits * 1e6 : 0.0,
                misses ? miss_lat / misses * 1e6 : 0.0,
                (miss_lat / misses) / (hit_lat / hits));
    std::printf("query cache stats: %llu hits, %llu misses "
                "(miss rate %.0f%%)\n",
                (unsigned long long)store.queryCache()->hits(),
                (unsigned long long)store.queryCache()->misses(),
                store.queryCache()->missRate() * 100);

    // Tighten the threshold: paraphrases stop hitting.
    store.queryCache()->setThreshold(0.01);
    store.queryCache()->resetStats();
    auto qfv = images.featureForTopic(5, 5 * 7919 + 13);
    store.getResults(store.querySync(qfv, 5, scn, db, 0, 0));
    std::printf("\nwith a 1%% threshold the same paraphrase now %s\n",
                store.queryCache()->hits() ? "hits" : "misses");
    return 0;
}
