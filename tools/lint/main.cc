/**
 * @file
 * deepstore_lint CLI.
 *
 *   deepstore_lint --root <repo-root> [--rules D1,D4] [-q] [--json]
 *                  [--emit-inventory FILE] [--check-inventory FILE]
 *   deepstore_lint [--rules ...] <file.cc> [more files...]
 *
 * Tree mode (no positional files) walks <root>/src and <root>/tests
 * with all rules including the structural D5/D11 checks and the D8
 * shared-state inventory; file mode runs the token rules on the
 * given files only (used by the fixture tests). Exit status is 0 iff
 * there are no findings and any requested inventory check passed.
 *
 *   --json             print the machine-readable report (findings,
 *                      suppression/rule counts, D8 inventory) instead
 *                      of the text report; CI archives it
 *   --emit-inventory   write the D8 inventory JSON to FILE (use it to
 *                      refresh tools/lint/sim_state_inventory.json)
 *   --check-inventory  byte-compare the freshly built inventory
 *                      against FILE and fail on drift, so the
 *                      committed inventory can never go stale
 */

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint.h"

namespace {

std::vector<std::string>
splitRules(const std::string &csv)
{
    std::vector<std::string> out;
    std::stringstream ss(csv);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

int
usage()
{
    std::fprintf(
        stderr,
        "usage: deepstore_lint [--root DIR] [--rules D1,D2,...] "
        "[-q] [--json]\n"
        "                      [--emit-inventory FILE] "
        "[--check-inventory FILE] [files...]\n"
        "  tree mode (no files): lint DIR/src and DIR/tests with "
        "all rules (D1-D12)\n"
        "  file mode: lint the given files with the token rules\n"
        "  -q suppresses the per-suppression notes\n"
        "  --json prints the machine-readable report\n"
        "  --emit-inventory writes the D8 shared-state inventory\n"
        "  --check-inventory fails (exit 1) if the inventory "
        "drifted from FILE\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string root = ".";
    deepstore::lint::Options opts;
    std::vector<std::string> files;
    bool verbose = true;
    bool json = false;
    std::string emit_inventory;
    std::string check_inventory;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--root" && i + 1 < argc) {
            root = argv[++i];
        } else if (arg == "--rules" && i + 1 < argc) {
            opts.rules = splitRules(argv[++i]);
        } else if (arg == "-q") {
            verbose = false;
        } else if (arg == "--json") {
            json = true;
        } else if (arg == "--emit-inventory" && i + 1 < argc) {
            emit_inventory = argv[++i];
        } else if (arg == "--check-inventory" && i + 1 < argc) {
            check_inventory = argv[++i];
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            return usage();
        } else {
            files.push_back(arg);
        }
    }

    deepstore::lint::Report report;
    try {
        if (files.empty()) {
            report = deepstore::lint::lintTree(root, opts);
        } else {
            for (const auto &f : files) {
                std::ifstream in(f, std::ios::binary);
                if (!in) {
                    std::fprintf(stderr,
                                 "deepstore_lint: cannot read %s\n",
                                 f.c_str());
                    return 2;
                }
                std::ostringstream ss;
                ss << in.rdbuf();
                deepstore::lint::lintSource(
                    f, ss.str(), opts,
                    deepstore::lint::FileContext{}, report);
            }
        }
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 2;
    }

    bool inventory_ok = true;
    std::string inventory =
        deepstore::lint::formatInventory(report);
    if (!emit_inventory.empty()) {
        std::ofstream out(emit_inventory, std::ios::binary);
        if (!out) {
            std::fprintf(stderr,
                         "deepstore_lint: cannot write %s\n",
                         emit_inventory.c_str());
            return 2;
        }
        out << inventory;
    }
    if (!check_inventory.empty()) {
        std::ifstream in(check_inventory, std::ios::binary);
        std::ostringstream ss;
        if (in)
            ss << in.rdbuf();
        if (!in || ss.str() != inventory) {
            std::fprintf(
                stderr,
                "deepstore_lint: shared-state inventory drift: %s "
                "does not match the tree; regenerate it with\n"
                "  deepstore_lint --root . --emit-inventory %s\n"
                "and commit the result\n",
                check_inventory.c_str(), check_inventory.c_str());
            inventory_ok = false;
        }
    }

    if (json)
        std::fputs(deepstore::lint::formatJson(report).c_str(),
                   stdout);
    else
        std::fputs(
            deepstore::lint::formatReport(report, verbose).c_str(),
            stdout);
    return (report.clean() && inventory_ok) ? 0 : 1;
}
