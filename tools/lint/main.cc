/**
 * @file
 * deepstore_lint CLI.
 *
 *   deepstore_lint --root <repo-root> [--rules D1,D4] [-q]
 *   deepstore_lint [--rules ...] <file.cc> [more files...]
 *
 * Tree mode (no positional files) walks <root>/src and <root>/tests
 * with all rules including the structural D5 checks; file mode runs
 * the token rules (D1–D4, D6) on the given files only (used by the
 * fixture tests). Exit status is 0 iff there are no findings.
 */

#include <cstdio>
#include <fstream>
#include <iostream>
#include <sstream>
#include <string>
#include <vector>

#include "lint.h"

namespace {

std::vector<std::string>
splitRules(const std::string &csv)
{
    std::vector<std::string> out;
    std::stringstream ss(csv);
    std::string item;
    while (std::getline(ss, item, ','))
        if (!item.empty())
            out.push_back(item);
    return out;
}

int
usage()
{
    std::fprintf(
        stderr,
        "usage: deepstore_lint [--root DIR] [--rules D1,D2,...] "
        "[-q] [files...]\n"
        "  tree mode (no files): lint DIR/src and DIR/tests with "
        "all rules (D1-D6)\n"
        "  file mode: lint the given files with the token rules "
        "(D1-D4, D6)\n"
        "  -q suppresses the per-suppression notes\n");
    return 2;
}

} // namespace

int
main(int argc, char **argv)
{
    std::string root = ".";
    deepstore::lint::Options opts;
    std::vector<std::string> files;
    bool verbose = true;

    for (int i = 1; i < argc; ++i) {
        std::string arg = argv[i];
        if (arg == "--root" && i + 1 < argc) {
            root = argv[++i];
        } else if (arg == "--rules" && i + 1 < argc) {
            opts.rules = splitRules(argv[++i]);
        } else if (arg == "-q") {
            verbose = false;
        } else if (arg == "--help" || arg == "-h") {
            usage();
            return 0;
        } else if (!arg.empty() && arg[0] == '-') {
            return usage();
        } else {
            files.push_back(arg);
        }
    }

    deepstore::lint::Report report;
    try {
        if (files.empty()) {
            report = deepstore::lint::lintTree(root, opts);
        } else {
            for (const auto &f : files) {
                std::ifstream in(f, std::ios::binary);
                if (!in) {
                    std::fprintf(stderr,
                                 "deepstore_lint: cannot read %s\n",
                                 f.c_str());
                    return 2;
                }
                std::ostringstream ss;
                ss << in.rdbuf();
                deepstore::lint::lintSource(f, ss.str(), opts, {},
                                            report);
            }
        }
    } catch (const std::exception &e) {
        std::fprintf(stderr, "%s\n", e.what());
        return 2;
    }

    std::fputs(
        deepstore::lint::formatReport(report, verbose).c_str(),
        stdout);
    return report.clean() ? 0 : 1;
}
