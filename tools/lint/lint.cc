/**
 * @file
 * Implementation of deepstore-lint (see lint.h for the rule table).
 *
 * Deliberately token/line-level: a literal-stripping pass plus a tiny
 * tokenizer is enough to enforce the determinism invariants without a
 * libclang dependency, so the checker builds from the same CMake tree
 * and runs everywhere the tests run.
 */

#include "lint.h"

#include <algorithm>
#include <cctype>
#include <filesystem>
#include <fstream>
#include <regex>
#include <set>
#include <sstream>
#include <stdexcept>

namespace deepstore::lint {
namespace {

namespace fs = std::filesystem;

// ------------------------------------------------------------------
// Literal stripping
// ------------------------------------------------------------------

bool
startsWith(const std::string &s, std::size_t i, const char *pat)
{
    for (std::size_t j = 0; pat[j]; ++j)
        if (i + j >= s.size() || s[i + j] != pat[j])
            return false;
    return true;
}

} // namespace

StrippedSource
stripSource(const std::string &content)
{
    StrippedSource out;
    out.code.reserve(content.size());
    out.comments.emplace_back(); // line 1

    enum class State {
        Code,
        LineComment,
        BlockComment,
        String,
        Char,
        RawString,
    };
    State state = State::Code;
    std::string raw_delim; // for raw strings: )delim"

    for (std::size_t i = 0; i < content.size(); ++i) {
        char c = content[i];
        if (c == '\n') {
            out.code += '\n';
            out.comments.emplace_back();
            if (state == State::LineComment)
                state = State::Code;
            // Unterminated normal literals do not survive a newline.
            if (state == State::String || state == State::Char)
                state = State::Code;
            continue;
        }
        switch (state) {
          case State::Code:
            if (startsWith(content, i, "//")) {
                state = State::LineComment;
                out.code += ' ';
            } else if (startsWith(content, i, "/*")) {
                state = State::BlockComment;
                out.code += ' ';
            } else if (c == '"' &&
                       (i == 0 ||
                        !(std::isalnum(
                              static_cast<unsigned char>(
                                  content[i - 1])) ||
                          content[i - 1] == '_') ||
                        content[i - 1] == 'R')) {
                if (i > 0 && content[i - 1] == 'R') {
                    // Raw string R"delim( ... )delim"
                    std::size_t p = i + 1;
                    std::string delim;
                    while (p < content.size() && content[p] != '(')
                        delim += content[p++];
                    raw_delim = ")" + delim + "\"";
                    state = State::RawString;
                } else {
                    state = State::String;
                }
                out.code += ' ';
            } else if (c == '\'' && i > 0 &&
                       (std::isalnum(static_cast<unsigned char>(
                            content[i - 1])) ||
                        content[i - 1] == '_')) {
                // Digit separator (1'000'000): keep as code.
                out.code += c;
            } else if (c == '\'') {
                state = State::Char;
                out.code += ' ';
            } else {
                out.code += c;
            }
            break;
          case State::LineComment:
            out.comments.back() += c;
            out.code += ' ';
            break;
          case State::BlockComment:
            if (startsWith(content, i, "*/")) {
                state = State::Code;
                out.code += ' ';
                ++i;
                out.code += ' ';
            } else {
                out.comments.back() += c;
                out.code += ' ';
            }
            break;
          case State::String:
            if (c == '\\' && i + 1 < content.size() &&
                content[i + 1] != '\n') {
                out.code += "  ";
                ++i;
            } else if (c == '"') {
                state = State::Code;
                out.code += ' ';
            } else {
                out.code += ' ';
            }
            break;
          case State::Char:
            if (c == '\\' && i + 1 < content.size() &&
                content[i + 1] != '\n') {
                out.code += "  ";
                ++i;
            } else if (c == '\'') {
                state = State::Code;
                out.code += ' ';
            } else {
                out.code += ' ';
            }
            break;
          case State::RawString:
            if (startsWith(content, i, raw_delim.c_str())) {
                for (std::size_t j = 0; j < raw_delim.size(); ++j)
                    out.code += ' ';
                i += raw_delim.size() - 1;
                state = State::Code;
            } else {
                out.code += ' ';
            }
            break;
        }
    }
    return out;
}

namespace {

// ------------------------------------------------------------------
// Tokenizer
// ------------------------------------------------------------------

struct Token
{
    std::string text;
    int line = 0;
    bool ident = false;
};

std::vector<Token>
tokenize(const std::string &code)
{
    std::vector<Token> toks;
    int line = 1;
    for (std::size_t i = 0; i < code.size(); ++i) {
        char c = code[i];
        if (c == '\n') {
            ++line;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c)))
            continue;
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
            std::size_t j = i;
            while (j < code.size() &&
                   (std::isalnum(
                        static_cast<unsigned char>(code[j])) ||
                    code[j] == '_'))
                ++j;
            toks.push_back({code.substr(i, j - i), line, true});
            i = j - 1;
            continue;
        }
        if (std::isdigit(static_cast<unsigned char>(c))) {
            std::size_t j = i;
            while (j < code.size() &&
                   (std::isalnum(
                        static_cast<unsigned char>(code[j])) ||
                    code[j] == '.' || code[j] == '\''))
                ++j;
            toks.push_back({code.substr(i, j - i), line, false});
            i = j - 1;
            continue;
        }
        // Multi-char operators the rules care about.
        static const char *kOps[] = {"::", "->", "+=", "-="};
        bool matched = false;
        for (const char *op : kOps) {
            if (startsWith(code, i, op)) {
                toks.push_back({op, line, false});
                ++i;
                matched = true;
                break;
            }
        }
        if (!matched)
            toks.push_back({std::string(1, c), line, false});
    }
    return toks;
}

std::string
lower(std::string s)
{
    std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
    });
    return s;
}

bool
pathContains(const std::string &path, const char *needle)
{
    return path.find(needle) != std::string::npos;
}

// ------------------------------------------------------------------
// Suppression annotations
// ------------------------------------------------------------------

struct Annotation
{
    std::string rule;
    std::string reason; // may be empty (which is itself a finding)
};

/** Parse `lint:allow(Dk: reason)` / `lint:ordered-ok(reason)`. */
std::vector<Annotation>
parseAnnotations(const std::string &comment)
{
    std::vector<Annotation> out;
    static const std::regex kAllow(
        R"(lint:allow\(\s*(D[0-9]+)\s*(?::\s*([^)]*))?\))");
    static const std::regex kOrdered(
        R"(lint:ordered-ok\(\s*([^)]*)\))");
    for (auto it = std::sregex_iterator(comment.begin(),
                                        comment.end(), kAllow);
         it != std::sregex_iterator(); ++it) {
        Annotation a;
        a.rule = (*it)[1];
        a.reason = (*it)[2];
        out.push_back(std::move(a));
    }
    for (auto it = std::sregex_iterator(comment.begin(),
                                        comment.end(), kOrdered);
         it != std::sregex_iterator(); ++it) {
        out.push_back({"D4", (*it)[1]});
    }
    return out;
}

/** Strip trailing whitespace from a reason string. */
std::string
trim(std::string s)
{
    while (!s.empty() &&
           std::isspace(static_cast<unsigned char>(s.back())))
        s.pop_back();
    std::size_t b = 0;
    while (b < s.size() &&
           std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    return s.substr(b);
}

class FileLinter
{
  public:
    FileLinter(const std::string &path, const StrippedSource &src,
               const Options &opts,
               const std::set<std::string> &unordered_names,
               Report &report)
        : path_(path), src_(src), opts_(opts),
          unordered_(unordered_names), report_(report),
          toks_(tokenize(src.code))
    {
    }

    void
    run()
    {
        if (opts_.enabled("D1") && !pathContains(path_, "bench/"))
            ruleD1();
        if (opts_.enabled("D2") &&
            !pathContains(path_, "common/rng."))
            ruleD2();
        if (opts_.enabled("D3") &&
            !pathContains(path_, "core/time_ledger.") &&
            !pathContains(path_, "src/sim/"))
            ruleD3();
        if (opts_.enabled("D4"))
            ruleD4();
        if (opts_.enabled("D6") &&
            pathContains(path_, "src/core/") &&
            !pathContains(path_, "core/time_ledger."))
            ruleD6();
        if (opts_.enabled("D7") &&
            pathContains(path_, "src/core/") &&
            !pathContains(path_, "core/ssd_node.") &&
            !pathContains(path_, "core/array_coordinator."))
            ruleD7();
    }

  private:
    /** Emit a finding unless an annotation suppresses it. */
    void
    emit(const std::string &rule, int line, std::string message)
    {
        for (int l : {line, line - 1}) {
            if (l < 1 ||
                static_cast<std::size_t>(l) > src_.comments.size())
                continue;
            for (const Annotation &a :
                 parseAnnotations(src_.comments[l - 1])) {
                if (a.rule != rule)
                    continue;
                std::string reason = trim(a.reason);
                if (reason.empty()) {
                    report_.findings.push_back(
                        {path_, line, rule,
                         message +
                             " [suppression missing a reason: "
                             "write lint:allow(" +
                             rule + ": <why>)]"});
                    return;
                }
                report_.suppressions.push_back(
                    {path_, line, rule, reason});
                return;
            }
        }
        report_.findings.push_back(
            {path_, line, rule, std::move(message)});
    }

    const Token *
    prev(std::size_t i) const
    {
        return i > 0 ? &toks_[i - 1] : nullptr;
    }

    const Token *
    next(std::size_t i) const
    {
        return i + 1 < toks_.size() ? &toks_[i + 1] : nullptr;
    }

    /** True when toks_[i] is used as a free (or std::) call. */
    bool
    freeCall(std::size_t i) const
    {
        const Token *n = next(i);
        if (!n || n->text != "(")
            return false;
        const Token *p = prev(i);
        if (!p)
            return true;
        if (p->text == "." || p->text == "->")
            return false; // member call on some object
        if (p->text == "::") {
            const Token *pp = i >= 2 ? &toks_[i - 2] : nullptr;
            return pp && pp->text == "std";
        }
        if (p->ident || p->text == ">" || p->text == "*" ||
            p->text == "&") {
            // `Type name(...)` / `Type *name(...)`: a declaration of
            // a variable or function named like the API, not a call
            // of it — unless the preceding identifier is a keyword
            // that can directly precede a call expression.
            static const std::set<std::string> kExprKeywords = {
                "return", "co_return", "co_yield", "case",
                "throw",  "new",       "else"};
            return p->ident && kExprKeywords.count(p->text) != 0;
        }
        return true;
    }

    void
    ruleD1()
    {
        static const std::set<std::string> kClockIdents = {
            "system_clock", "steady_clock", "high_resolution_clock"};
        static const std::set<std::string> kClockCalls = {
            "time",      "clock",     "gettimeofday",
            "localtime", "gmtime",    "mktime",
            "ftime",     "timespec_get", "clock_gettime"};
        for (std::size_t i = 0; i < toks_.size(); ++i) {
            const Token &t = toks_[i];
            if (!t.ident)
                continue;
            if (kClockIdents.count(t.text)) {
                emit("D1", t.line,
                     "wall-clock API `" + t.text +
                         "` breaks replayability; simulated time "
                         "flows through TimeLedger/EventQueue "
                         "(bench/ is exempt)");
            } else if (kClockCalls.count(t.text) && freeCall(i)) {
                emit("D1", t.line,
                     "wall-clock call `" + t.text +
                         "()` breaks replayability; simulated time "
                         "flows through TimeLedger/EventQueue "
                         "(bench/ is exempt)");
            }
        }
    }

    void
    ruleD2()
    {
        static const std::set<std::string> kRngIdents = {
            "random_device",        "mt19937",
            "mt19937_64",           "minstd_rand",
            "minstd_rand0",         "default_random_engine",
            "knuth_b",              "ranlux24",
            "ranlux48"};
        static const std::set<std::string> kRngCalls = {
            "rand", "srand", "rand_r", "drand48", "random"};
        for (std::size_t i = 0; i < toks_.size(); ++i) {
            const Token &t = toks_[i];
            if (!t.ident)
                continue;
            if (kRngIdents.count(t.text)) {
                emit("D2", t.line,
                     "`" + t.text +
                         "` is unseeded or non-portable; all "
                         "randomness flows through common/rng "
                         "(deepstore::Rng)");
            } else if (kRngCalls.count(t.text) && freeCall(i)) {
                emit("D2", t.line,
                     "`" + t.text +
                         "()` is unseeded/global randomness; all "
                         "randomness flows through common/rng "
                         "(deepstore::Rng)");
            }
        }
    }

    static bool
    simTimeName(const std::string &name)
    {
        std::string l = lower(name);
        if (l.find("seconds") != std::string::npos)
            return true;
        static const std::set<std::string> kTimeNames = {
            "now_", "tick_", "ticks_", "time_", "simtime_"};
        return kTimeNames.count(l) != 0;
    }

    void
    ruleD3()
    {
        for (std::size_t i = 0; i + 1 < toks_.size(); ++i) {
            const Token &t = toks_[i];
            if (!t.ident || !simTimeName(t.text))
                continue;
            const Token &op = toks_[i + 1];
            if (op.text == "+=" || op.text == "-=") {
                emit("D3", t.line,
                     "direct sim-time accumulation `" + t.text + " " +
                         op.text +
                         " ...`; time advances only through "
                         "core/time_ledger (TimeLedger) or the "
                         "EventQueue");
            }
        }
    }

    void
    ruleD4()
    {
        for (std::size_t i = 0; i + 1 < toks_.size(); ++i) {
            if (!toks_[i].ident || toks_[i].text != "for" ||
                toks_[i + 1].text != "(")
                continue;
            // Find the `:` at paren depth 1 and the closing paren.
            int depth = 0;
            std::size_t colon = 0, close = 0;
            for (std::size_t j = i + 1; j < toks_.size(); ++j) {
                const std::string &x = toks_[j].text;
                if (x == "(")
                    ++depth;
                else if (x == ")") {
                    if (--depth == 0) {
                        close = j;
                        break;
                    }
                } else if (x == ":" && depth == 1 && colon == 0) {
                    colon = j;
                } else if (x == ";" && depth == 1) {
                    break; // classic for loop
                }
            }
            if (!colon || !close)
                continue;
            for (std::size_t j = colon + 1; j < close; ++j) {
                if (toks_[j].ident &&
                    unordered_.count(toks_[j].text)) {
                    emit("D4", toks_[i].line,
                         "range-for over unordered container `" +
                             toks_[j].text +
                             "`: iteration order is "
                             "implementation-defined and breaks "
                             "replay determinism; iterate a sorted "
                             "copy or annotate "
                             "lint:ordered-ok(<reason>)");
                    break;
                }
            }
        }
    }

    void
    ruleD6()
    {
        for (std::size_t i = 0; i + 3 < toks_.size(); ++i) {
            const Token &recv = toks_[i];
            if (!recv.ident ||
                lower(recv.text).find("ledger") ==
                    std::string::npos)
                continue;
            const Token &acc = toks_[i + 1];
            if (acc.text != "." && acc.text != "->")
                continue;
            if (toks_[i + 2].text != "advance" ||
                toks_[i + 3].text != "(")
                continue;
            emit("D6", recv.line,
                 "closed-form TimeLedger advance `" + recv.text +
                     acc.text +
                     "advance(...)` in the live scan path: "
                     "scan/compute/weight/probe/top-K durations "
                     "come from scheduled events on the shared "
                     "resources (EventQueue, ComputeArbiter, "
                     "BandwidthLink); host-side fast paths outside "
                     "the scan datapath annotate "
                     "lint:allow(D6: <why>)");
        }
    }

    void
    ruleD7()
    {
        for (std::size_t i = 0; i < toks_.size(); ++i) {
            const Token &recv = toks_[i];
            if (!recv.ident)
                continue;
            std::string l = lower(recv.text);
            if (l.find("ssd") == std::string::npos &&
                l.find("ftl") == std::string::npos)
                continue;
            const Token *n = next(i);
            if (!n)
                continue;
            // Scope qualification (`ssd::Completion`,
            // `Level::SsdLevel` never puts the enumerator first) is
            // naming, not reaching.
            if (n->text == "::")
                continue;
            std::size_t after = i + 1;
            if (n->text == "(") {
                // Accessor-call form: `ssd().hostRead(...)` — walk
                // to the matching close paren, then require a member
                // access right after it.
                int depth = 0;
                std::size_t j = i + 1;
                for (; j < toks_.size(); ++j) {
                    if (toks_[j].text == "(") {
                        ++depth;
                    } else if (toks_[j].text == ")" &&
                               --depth == 0) {
                        ++j;
                        break;
                    }
                }
                after = j;
            }
            if (after >= toks_.size())
                continue;
            const std::string &acc = toks_[after].text;
            if (acc != "." && acc != "->")
                continue;
            emit("D7", recv.line,
                 "direct Ssd/Ftl member access `" + recv.text +
                     (n->text == "(" ? "()" : "") + acc +
                     "...` outside the node/array layer: src/core "
                     "code goes through the SsdNode/ArrayCoordinator "
                     "passthroughs so per-node geometry, fault "
                     "domains, and drive death stay behind the "
                     "array; deliberate escapes annotate "
                     "lint:allow(D7: <why>)");
        }
    }

    const std::string &path_;
    const StrippedSource &src_;
    const Options &opts_;
    const std::set<std::string> &unordered_;
    Report &report_;
    std::vector<Token> toks_;
};

std::string
readFile(const fs::path &p)
{
    std::ifstream in(p, std::ios::binary);
    if (!in)
        throw std::runtime_error("deepstore_lint: cannot read " +
                                 p.string());
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** Sorted list of *.cc / *.h under dir (missing dir -> empty). */
std::vector<fs::path>
sourceFilesUnder(const fs::path &dir)
{
    std::vector<fs::path> files;
    if (!fs::exists(dir))
        return files;
    for (const auto &e : fs::recursive_directory_iterator(dir)) {
        if (!e.is_regular_file())
            continue;
        auto ext = e.path().extension().string();
        if (ext == ".cc" || ext == ".h")
            files.push_back(e.path());
    }
    std::sort(files.begin(), files.end());
    return files;
}

} // namespace

std::vector<std::string>
collectUnorderedNames(const std::string &content)
{
    std::vector<std::string> names;
    StrippedSource src = stripSource(content);
    std::vector<Token> toks = tokenize(src.code);
    static const std::set<std::string> kUnordered = {
        "unordered_map", "unordered_set", "unordered_multimap",
        "unordered_multiset"};
    for (std::size_t i = 0; i < toks.size(); ++i) {
        if (!toks[i].ident || !kUnordered.count(toks[i].text))
            continue;
        std::size_t j = i + 1;
        if (j >= toks.size() || toks[j].text != "<")
            continue;
        // Balance template angle brackets (tokens are single chars,
        // so >> arrives as two > tokens).
        int depth = 0;
        for (; j < toks.size(); ++j) {
            if (toks[j].text == "<")
                ++depth;
            else if (toks[j].text == ">" && --depth == 0) {
                ++j;
                break;
            } else if (toks[j].text == ";") {
                break; // malformed / not a declaration
            }
        }
        // Skip declarator decorations, take the variable name.
        while (j < toks.size() &&
               (toks[j].text == "&" || toks[j].text == "*" ||
                toks[j].text == "const"))
            ++j;
        if (j < toks.size() && toks[j].ident)
            names.push_back(toks[j].text);
    }
    std::sort(names.begin(), names.end());
    names.erase(std::unique(names.begin(), names.end()),
                names.end());
    return names;
}

void
lintSource(const std::string &path, const std::string &content,
           const Options &opts,
           const std::vector<std::string> &unordered_names,
           Report &report)
{
    std::set<std::string> unordered(unordered_names.begin(),
                                    unordered_names.end());
    for (const auto &n : collectUnorderedNames(content))
        unordered.insert(n);
    StrippedSource src = stripSource(content);
    FileLinter linter(path, src, opts, unordered, report);
    linter.run();
}

Report
lintTree(const std::string &root, const Options &opts)
{
    Report report;
    fs::path rootp(root);

    std::vector<fs::path> files =
        sourceFilesUnder(rootp / "src");
    for (const auto &p : sourceFilesUnder(rootp / "tests"))
        files.push_back(p);

    // Pass 1: global unordered-variable name set (headers declare the
    // members, .cc files iterate them).
    std::vector<std::string> unordered;
    std::vector<std::pair<std::string, std::string>> contents;
    contents.reserve(files.size());
    for (const auto &p : files) {
        std::string text = readFile(p);
        for (const auto &n : collectUnorderedNames(text))
            unordered.push_back(n);
        contents.emplace_back(
            fs::relative(p, rootp).generic_string(),
            std::move(text));
    }
    std::sort(unordered.begin(), unordered.end());
    unordered.erase(
        std::unique(unordered.begin(), unordered.end()),
        unordered.end());

    // Pass 2: token rules.
    for (const auto &[rel, text] : contents)
        lintSource(rel, text, opts, unordered, report);

    // ---- D5: structural checks ----------------------------------
    if (opts.enabled("D5")) {
        // Every tests/.../test_*.cc is registered in
        // tests/CMakeLists.txt.
        fs::path cml = rootp / "tests" / "CMakeLists.txt";
        std::string cml_text =
            fs::exists(cml) ? readFile(cml) : std::string();
        for (const auto &p : sourceFilesUnder(rootp / "tests")) {
            std::string base = p.filename().string();
            if (base.rfind("test_", 0) != 0 ||
                p.extension() != ".cc")
                continue;
            std::string rel =
                fs::relative(p, rootp / "tests").generic_string();
            if (cml_text.find(rel) == std::string::npos) {
                report.findings.push_back(
                    {"tests/CMakeLists.txt", 1, "D5",
                     "test file tests/" + rel +
                         " is not registered in "
                         "tests/CMakeLists.txt (it would silently "
                         "never run)"});
            }
        }
        // Every bench/bench_*.cc emits a JsonReport.
        for (const auto &p : sourceFilesUnder(rootp / "bench")) {
            std::string base = p.filename().string();
            if (base.rfind("bench_", 0) != 0 ||
                p.extension() != ".cc")
                continue;
            StrippedSource src = stripSource(readFile(p));
            bool has = false;
            for (const Token &t : tokenize(src.code)) {
                if (t.ident && t.text == "JsonReport") {
                    has = true;
                    break;
                }
            }
            if (has)
                continue;
            // Structural rule, so the suppression is file-level: a
            // lint:allow(D5: ...) comment anywhere in the bench.
            bool suppressed = false;
            for (std::size_t l = 0; l < src.comments.size(); ++l) {
                for (const Annotation &a :
                     parseAnnotations(src.comments[l])) {
                    if (a.rule != "D5")
                        continue;
                    std::string reason = trim(a.reason);
                    if (reason.empty()) {
                        report.findings.push_back(
                            {"bench/" + base,
                             static_cast<int>(l + 1), "D5",
                             "suppression missing a reason: write "
                             "lint:allow(D5: <why>)"});
                    } else {
                        report.suppressions.push_back(
                            {"bench/" + base,
                             static_cast<int>(l + 1), "D5",
                             reason});
                    }
                    suppressed = true;
                }
            }
            if (!suppressed) {
                report.findings.push_back(
                    {"bench/" + base, 1, "D5",
                     "bench binary emits no JsonReport: CI and the "
                     "plotting scripts consume BENCH_<name>.json, "
                     "not the text tables"});
            }
        }
    }
    return report;
}

std::string
formatReport(const Report &report, bool verbose)
{
    std::ostringstream os;
    for (const Finding &f : report.findings)
        os << f.file << ":" << f.line << ": [" << f.rule << "] "
           << f.message << "\n";
    if (verbose) {
        for (const Suppression &s : report.suppressions)
            os << "note: " << s.file << ":" << s.line << ": ["
               << s.rule << "] suppressed: " << s.reason << "\n";
    }
    os << "deepstore_lint: " << report.findings.size()
       << " finding(s), " << report.suppressions.size()
       << " suppression(s) honoured\n";
    return os.str();
}

} // namespace deepstore::lint
