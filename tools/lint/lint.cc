/**
 * @file
 * Implementation of deepstore-lint (see lint.h for the rule table).
 *
 * Deliberately token/line-level: a literal-stripping pass plus a tiny
 * tokenizer is enough to enforce the determinism invariants without a
 * libclang dependency, so the checker builds from the same CMake tree
 * and runs everywhere the tests run.
 *
 * v2 structure: lintTree() runs phase 1 (cross-TU index: unordered /
 * float / pointer member names, per-file mutable-static scans) before
 * the per-file phase 2 token rules, then the structural passes (D5
 * registration, D11 stats schema) and the D8 inventory sort.
 */

#include "lint.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <map>
#include <regex>
#include <set>
#include <sstream>
#include <stdexcept>

namespace deepstore::lint {
namespace {

namespace fs = std::filesystem;

// ------------------------------------------------------------------
// Literal stripping
// ------------------------------------------------------------------

bool
startsWith(const std::string &s, std::size_t i, const char *pat)
{
    for (std::size_t j = 0; pat[j]; ++j)
        if (i + j >= s.size() || s[i + j] != pat[j])
            return false;
    return true;
}

} // namespace

StrippedSource
stripSource(const std::string &content, bool keep_literals)
{
    StrippedSource out;
    out.code.reserve(content.size());
    out.comments.emplace_back(); // line 1

    enum class State {
        Code,
        LineComment,
        BlockComment,
        String,
        Char,
        RawString,
    };
    State state = State::Code;
    std::string raw_delim; // for raw strings: )delim"

    for (std::size_t i = 0; i < content.size(); ++i) {
        char c = content[i];
        if (c == '\n') {
            out.code += '\n';
            out.comments.emplace_back();
            if (state == State::LineComment)
                state = State::Code;
            // Unterminated normal literals do not survive a newline.
            if (state == State::String || state == State::Char)
                state = State::Code;
            continue;
        }
        switch (state) {
          case State::Code:
            if (startsWith(content, i, "//")) {
                state = State::LineComment;
                out.code += ' ';
            } else if (startsWith(content, i, "/*")) {
                state = State::BlockComment;
                out.code += ' ';
            } else if (c == '"' &&
                       (i == 0 ||
                        !(std::isalnum(
                              static_cast<unsigned char>(
                                  content[i - 1])) ||
                          content[i - 1] == '_') ||
                        content[i - 1] == 'R')) {
                if (i > 0 && content[i - 1] == 'R') {
                    // Raw string R"delim( ... )delim"
                    std::size_t p = i + 1;
                    std::string delim;
                    while (p < content.size() && content[p] != '(')
                        delim += content[p++];
                    raw_delim = ")" + delim + "\"";
                    state = State::RawString;
                } else {
                    state = State::String;
                }
                out.code += keep_literals ? c : ' ';
            } else if (c == '\'' && i > 0 &&
                       (std::isalnum(static_cast<unsigned char>(
                            content[i - 1])) ||
                        content[i - 1] == '_')) {
                // Digit separator (1'000'000): keep as code.
                out.code += c;
            } else if (c == '\'') {
                state = State::Char;
                out.code += ' ';
            } else {
                out.code += c;
            }
            break;
          case State::LineComment:
            out.comments.back() += c;
            out.code += ' ';
            break;
          case State::BlockComment:
            if (startsWith(content, i, "*/")) {
                state = State::Code;
                out.code += ' ';
                ++i;
                out.code += ' ';
            } else {
                out.comments.back() += c;
                out.code += ' ';
            }
            break;
          case State::String:
            if (c == '\\' && i + 1 < content.size() &&
                content[i + 1] != '\n') {
                if (keep_literals) {
                    out.code += c;
                    out.code += content[i + 1];
                } else {
                    out.code += "  ";
                }
                ++i;
            } else if (c == '"') {
                state = State::Code;
                out.code += keep_literals ? c : ' ';
            } else {
                out.code += keep_literals ? c : ' ';
            }
            break;
          case State::Char:
            if (c == '\\' && i + 1 < content.size() &&
                content[i + 1] != '\n') {
                out.code += "  ";
                ++i;
            } else if (c == '\'') {
                state = State::Code;
                out.code += ' ';
            } else {
                out.code += ' ';
            }
            break;
          case State::RawString:
            if (startsWith(content, i, raw_delim.c_str())) {
                if (keep_literals) {
                    out.code += raw_delim;
                } else {
                    for (std::size_t j = 0; j < raw_delim.size();
                         ++j)
                        out.code += ' ';
                }
                i += raw_delim.size() - 1;
                state = State::Code;
            } else {
                out.code += keep_literals ? c : ' ';
            }
            break;
        }
    }
    return out;
}

namespace {

// ------------------------------------------------------------------
// Tokenizer
// ------------------------------------------------------------------

struct Token
{
    std::string text;
    int line = 0;
    bool ident = false;
};

std::vector<Token>
tokenize(const std::string &code)
{
    std::vector<Token> toks;
    int line = 1;
    for (std::size_t i = 0; i < code.size(); ++i) {
        char c = code[i];
        if (c == '\n') {
            ++line;
            continue;
        }
        if (std::isspace(static_cast<unsigned char>(c)))
            continue;
        if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
            std::size_t j = i;
            while (j < code.size() &&
                   (std::isalnum(
                        static_cast<unsigned char>(code[j])) ||
                    code[j] == '_'))
                ++j;
            toks.push_back({code.substr(i, j - i), line, true});
            i = j - 1;
            continue;
        }
        if (std::isdigit(static_cast<unsigned char>(c))) {
            std::size_t j = i;
            while (j < code.size() &&
                   (std::isalnum(
                        static_cast<unsigned char>(code[j])) ||
                    code[j] == '.' || code[j] == '\''))
                ++j;
            toks.push_back({code.substr(i, j - i), line, false});
            i = j - 1;
            continue;
        }
        // Multi-char operators the rules care about.
        static const char *kOps[] = {"::", "->", "+=", "-="};
        bool matched = false;
        for (const char *op : kOps) {
            if (startsWith(code, i, op)) {
                toks.push_back({op, line, false});
                ++i;
                matched = true;
                break;
            }
        }
        if (!matched)
            toks.push_back({std::string(1, c), line, false});
    }
    return toks;
}

std::string
lower(std::string s)
{
    std::transform(s.begin(), s.end(), s.begin(), [](unsigned char c) {
        return static_cast<char>(std::tolower(c));
    });
    return s;
}

bool
pathContains(const std::string &path, const char *needle)
{
    return path.find(needle) != std::string::npos;
}

/** True for paths under src/ (D8/D12 only police simulator code). */
bool
inSrc(const std::string &path)
{
    return path.rfind("src/", 0) == 0 || pathContains(path, "/src/");
}

// ------------------------------------------------------------------
// Suppression annotations
// ------------------------------------------------------------------

struct Annotation
{
    std::string rule;
    std::string reason; // may be empty (which is itself a finding)
};

/**
 * Parse `lint:allow(Dk: reason)` plus the rule-specific aliases
 * `lint:ordered-ok(reason)` (D4) and `lint:ptr-ordered-ok(reason)`
 * (D9).
 */
std::vector<Annotation>
parseAnnotations(const std::string &comment)
{
    std::vector<Annotation> out;
    static const std::regex kAllow(
        R"(lint:allow\(\s*(D[0-9]+)\s*(?::\s*([^)]*))?\))");
    static const std::regex kOrdered(
        R"(lint:(ptr-)?ordered-ok\(\s*([^)]*)\))");
    for (auto it = std::sregex_iterator(comment.begin(),
                                        comment.end(), kAllow);
         it != std::sregex_iterator(); ++it) {
        Annotation a;
        a.rule = (*it)[1];
        a.reason = (*it)[2];
        out.push_back(std::move(a));
    }
    for (auto it = std::sregex_iterator(comment.begin(),
                                        comment.end(), kOrdered);
         it != std::sregex_iterator(); ++it) {
        out.push_back(
            {(*it)[1].matched ? "D9" : "D4", (*it)[2]});
    }
    return out;
}

/** A parsed `lint:sim-state(<domain>: <reason>)` annotation (D8). */
struct SimStateAnnotation
{
    bool present = false;
    bool wellFormed = false; // had the `domain: reason` shape
    std::string domain;
    std::string reason;
};

SimStateAnnotation
parseSimState(const std::string &comment)
{
    SimStateAnnotation out;
    static const std::regex kAny(R"(lint:sim-state\(([^)]*)\))");
    std::smatch m;
    if (!std::regex_search(comment, m, kAny))
        return out;
    out.present = true;
    std::string body = m[1];
    std::size_t colon = body.find(':');
    if (colon == std::string::npos)
        return out; // malformed: no domain/reason split
    out.wellFormed = true;
    out.domain = body.substr(0, colon);
    out.reason = body.substr(colon + 1);
    return out;
}

/** Strip leading/trailing whitespace. */
std::string
trim(std::string s)
{
    while (!s.empty() &&
           std::isspace(static_cast<unsigned char>(s.back())))
        s.pop_back();
    std::size_t b = 0;
    while (b < s.size() &&
           std::isspace(static_cast<unsigned char>(s[b])))
        ++b;
    return s.substr(b);
}

const std::set<std::string> &
simStateDomains()
{
    static const std::set<std::string> kDomains = {
        "per-channel", "per-node", "coordinator", "kernel"};
    return kDomains;
}

/**
 * Emit a finding unless a same-line / line-above annotation
 * suppresses it. Shared by the per-file token rules and the
 * tree-level structural passes (D11), which is why it is a free
 * function over a StrippedSource rather than a FileLinter method.
 */
void
emitFinding(Report &report, const StrippedSource &src,
            const std::string &path, const std::string &rule,
            int line, std::string message)
{
    for (int l : {line, line - 1}) {
        if (l < 1 ||
            static_cast<std::size_t>(l) > src.comments.size())
            continue;
        for (const Annotation &a :
             parseAnnotations(src.comments[l - 1])) {
            if (a.rule != rule)
                continue;
            std::string reason = trim(a.reason);
            if (reason.empty()) {
                report.findings.push_back(
                    {path, line, rule,
                     message +
                         " [suppression missing a reason: "
                         "write lint:allow(" +
                         rule + ": <why>)]"});
                return;
            }
            report.suppressions.push_back({path, line, rule, reason});
            return;
        }
    }
    report.findings.push_back({path, line, rule, std::move(message)});
}

class FileLinter
{
  public:
    FileLinter(const std::string &path, const StrippedSource &src,
               const Options &opts,
               const std::set<std::string> &unordered_names,
               const std::set<std::string> &float_names,
               const std::set<std::string> &pointer_names,
               const std::vector<MutableStatic> &mutable_statics,
               Report &report)
        : path_(path), src_(src), opts_(opts),
          unordered_(unordered_names), floats_(float_names),
          pointers_(pointer_names), statics_(mutable_statics),
          report_(report), toks_(tokenize(src.code))
    {
    }

    void
    run()
    {
        if (opts_.enabled("D1") && !pathContains(path_, "bench/"))
            ruleD1();
        if (opts_.enabled("D2") &&
            !pathContains(path_, "common/rng."))
            ruleD2();
        if (opts_.enabled("D3") &&
            !pathContains(path_, "core/time_ledger.") &&
            !pathContains(path_, "src/sim/"))
            ruleD3();
        if (opts_.enabled("D4"))
            ruleD4();
        if (opts_.enabled("D6") &&
            pathContains(path_, "src/core/") &&
            !pathContains(path_, "core/time_ledger."))
            ruleD6();
        if (opts_.enabled("D7") &&
            pathContains(path_, "src/core/") &&
            !pathContains(path_, "core/ssd_node.") &&
            !pathContains(path_, "core/array_coordinator."))
            ruleD7();
        if (opts_.enabled("D8") && inSrc(path_))
            ruleD8();
        if (opts_.enabled("D9"))
            ruleD9();
        if (opts_.enabled("D10"))
            ruleD10();
        if (opts_.enabled("D12") && inSrc(path_))
            ruleD12();
    }

  private:
    /** Emit a finding unless an annotation suppresses it. */
    void
    emit(const std::string &rule, int line, std::string message)
    {
        emitFinding(report_, src_, path_, rule, line,
                    std::move(message));
    }

    const Token *
    prev(std::size_t i) const
    {
        return i > 0 ? &toks_[i - 1] : nullptr;
    }

    const Token *
    next(std::size_t i) const
    {
        return i + 1 < toks_.size() ? &toks_[i + 1] : nullptr;
    }

    /** True when toks_[i] is used as a free (or std::) call. */
    bool
    freeCall(std::size_t i) const
    {
        const Token *n = next(i);
        if (!n || n->text != "(")
            return false;
        const Token *p = prev(i);
        if (!p)
            return true;
        if (p->text == "." || p->text == "->")
            return false; // member call on some object
        if (p->text == "::") {
            const Token *pp = i >= 2 ? &toks_[i - 2] : nullptr;
            return pp && pp->text == "std";
        }
        if (p->ident || p->text == ">" || p->text == "*" ||
            p->text == "&") {
            // `Type name(...)` / `Type *name(...)`: a declaration of
            // a variable or function named like the API, not a call
            // of it — unless the preceding identifier is a keyword
            // that can directly precede a call expression.
            static const std::set<std::string> kExprKeywords = {
                "return", "co_return", "co_yield", "case",
                "throw",  "new",       "else"};
            return p->ident && kExprKeywords.count(p->text) != 0;
        }
        return true;
    }

    void
    ruleD1()
    {
        static const std::set<std::string> kClockIdents = {
            "system_clock", "steady_clock", "high_resolution_clock"};
        static const std::set<std::string> kClockCalls = {
            "time",      "clock",     "gettimeofday",
            "localtime", "gmtime",    "mktime",
            "ftime",     "timespec_get", "clock_gettime"};
        for (std::size_t i = 0; i < toks_.size(); ++i) {
            const Token &t = toks_[i];
            if (!t.ident)
                continue;
            if (kClockIdents.count(t.text)) {
                emit("D1", t.line,
                     "wall-clock API `" + t.text +
                         "` breaks replayability; simulated time "
                         "flows through TimeLedger/EventQueue "
                         "(bench/ is exempt)");
            } else if (kClockCalls.count(t.text) && freeCall(i)) {
                emit("D1", t.line,
                     "wall-clock call `" + t.text +
                         "()` breaks replayability; simulated time "
                         "flows through TimeLedger/EventQueue "
                         "(bench/ is exempt)");
            }
        }
    }

    void
    ruleD2()
    {
        static const std::set<std::string> kRngIdents = {
            "random_device",        "mt19937",
            "mt19937_64",           "minstd_rand",
            "minstd_rand0",         "default_random_engine",
            "knuth_b",              "ranlux24",
            "ranlux48"};
        static const std::set<std::string> kRngCalls = {
            "rand", "srand", "rand_r", "drand48", "random"};
        for (std::size_t i = 0; i < toks_.size(); ++i) {
            const Token &t = toks_[i];
            if (!t.ident)
                continue;
            if (kRngIdents.count(t.text)) {
                emit("D2", t.line,
                     "`" + t.text +
                         "` is unseeded or non-portable; all "
                         "randomness flows through common/rng "
                         "(deepstore::Rng)");
            } else if (kRngCalls.count(t.text) && freeCall(i)) {
                emit("D2", t.line,
                     "`" + t.text +
                         "()` is unseeded/global randomness; all "
                         "randomness flows through common/rng "
                         "(deepstore::Rng)");
            }
        }
    }

    static bool
    simTimeName(const std::string &name)
    {
        std::string l = lower(name);
        if (l.find("seconds") != std::string::npos)
            return true;
        static const std::set<std::string> kTimeNames = {
            "now_", "tick_", "ticks_", "time_", "simtime_"};
        return kTimeNames.count(l) != 0;
    }

    void
    ruleD3()
    {
        for (std::size_t i = 0; i + 1 < toks_.size(); ++i) {
            const Token &t = toks_[i];
            if (!t.ident || !simTimeName(t.text))
                continue;
            const Token &op = toks_[i + 1];
            if (op.text == "+=" || op.text == "-=") {
                emit("D3", t.line,
                     "direct sim-time accumulation `" + t.text + " " +
                         op.text +
                         " ...`; time advances only through "
                         "core/time_ledger (TimeLedger) or the "
                         "EventQueue");
            }
        }
    }

    /**
     * Find the range-for loops D4/D10 care about. Calls @p fn with
     * (for-token index, colon index, close-paren index) for every
     * `for (decl : range)` whose range expression names a known
     * unordered container.
     */
    template <typename Fn>
    void
    forEachUnorderedRangeFor(Fn fn)
    {
        for (std::size_t i = 0; i + 1 < toks_.size(); ++i) {
            if (!toks_[i].ident || toks_[i].text != "for" ||
                toks_[i + 1].text != "(")
                continue;
            int depth = 0;
            std::size_t colon = 0, close = 0;
            for (std::size_t j = i + 1; j < toks_.size(); ++j) {
                const std::string &x = toks_[j].text;
                if (x == "(")
                    ++depth;
                else if (x == ")") {
                    if (--depth == 0) {
                        close = j;
                        break;
                    }
                } else if (x == ":" && depth == 1 && colon == 0) {
                    colon = j;
                } else if (x == ";" && depth == 1) {
                    break; // classic for loop
                }
            }
            if (!colon || !close)
                continue;
            for (std::size_t j = colon + 1; j < close; ++j) {
                if (toks_[j].ident &&
                    unordered_.count(toks_[j].text)) {
                    fn(i, j, close);
                    break;
                }
            }
        }
    }

    void
    ruleD4()
    {
        forEachUnorderedRangeFor([this](std::size_t i,
                                        std::size_t name,
                                        std::size_t) {
            emit("D4", toks_[i].line,
                 "range-for over unordered container `" +
                     toks_[name].text +
                     "`: iteration order is "
                     "implementation-defined and breaks "
                     "replay determinism; iterate a sorted "
                     "copy or annotate "
                     "lint:ordered-ok(<reason>)");
        });
    }

    void
    ruleD6()
    {
        for (std::size_t i = 0; i + 3 < toks_.size(); ++i) {
            const Token &recv = toks_[i];
            if (!recv.ident ||
                lower(recv.text).find("ledger") ==
                    std::string::npos)
                continue;
            const Token &acc = toks_[i + 1];
            if (acc.text != "." && acc.text != "->")
                continue;
            if (toks_[i + 2].text != "advance" ||
                toks_[i + 3].text != "(")
                continue;
            emit("D6", recv.line,
                 "closed-form TimeLedger advance `" + recv.text +
                     acc.text +
                     "advance(...)` in the live scan path: "
                     "scan/compute/weight/probe/top-K durations "
                     "come from scheduled events on the shared "
                     "resources (EventQueue, ComputeArbiter, "
                     "BandwidthLink); host-side fast paths outside "
                     "the scan datapath annotate "
                     "lint:allow(D6: <why>)");
        }
    }

    void
    ruleD7()
    {
        for (std::size_t i = 0; i < toks_.size(); ++i) {
            const Token &recv = toks_[i];
            if (!recv.ident)
                continue;
            std::string l = lower(recv.text);
            if (l.find("ssd") == std::string::npos &&
                l.find("ftl") == std::string::npos)
                continue;
            const Token *n = next(i);
            if (!n)
                continue;
            // Scope qualification (`ssd::Completion`,
            // `Level::SsdLevel` never puts the enumerator first) is
            // naming, not reaching.
            if (n->text == "::")
                continue;
            std::size_t after = i + 1;
            if (n->text == "(") {
                // Accessor-call form: `ssd().hostRead(...)` — walk
                // to the matching close paren, then require a member
                // access right after it.
                int depth = 0;
                std::size_t j = i + 1;
                for (; j < toks_.size(); ++j) {
                    if (toks_[j].text == "(") {
                        ++depth;
                    } else if (toks_[j].text == ")" &&
                               --depth == 0) {
                        ++j;
                        break;
                    }
                }
                after = j;
            }
            if (after >= toks_.size())
                continue;
            const std::string &acc = toks_[after].text;
            if (acc != "." && acc != "->")
                continue;
            emit("D7", recv.line,
                 "direct Ssd/Ftl member access `" + recv.text +
                     (n->text == "(" ? "()" : "") + acc +
                     "...` outside the node/array layer: src/core "
                     "code goes through the SsdNode/ArrayCoordinator "
                     "passthroughs so per-node geometry, fault "
                     "domains, and drive death stay behind the "
                     "array; deliberate escapes annotate "
                     "lint:allow(D7: <why>)");
        }
    }

    void
    ruleD8()
    {
        for (const MutableStatic &m : statics_) {
            SimStateAnnotation ann;
            for (int l : {m.line, m.line - 1}) {
                if (l < 1 || static_cast<std::size_t>(l) >
                                 src_.comments.size())
                    continue;
                ann = parseSimState(src_.comments[l - 1]);
                if (ann.present)
                    break;
            }
            if (!ann.present) {
                emit("D8", m.line,
                     "mutable " + m.kind + " `" + m.symbol +
                         "` is shared simulator state: annotate "
                         "// lint:sim-state(<domain>: <reason>) "
                         "with its owner domain (per-channel | "
                         "per-node | coordinator | kernel) so the "
                         "parallel-DES inventory stays complete");
                continue;
            }
            std::string domain = trim(ann.domain);
            std::string reason = trim(ann.reason);
            if (!ann.wellFormed || reason.empty()) {
                report_.findings.push_back(
                    {path_, m.line, "D8",
                     "lint:sim-state on `" + m.symbol +
                         "` is missing a reason: write "
                         "lint:sim-state(<domain>: <why this "
                         "domain owns it>)"});
                continue;
            }
            if (!simStateDomains().count(domain)) {
                report_.findings.push_back(
                    {path_, m.line, "D8",
                     "lint:sim-state on `" + m.symbol +
                         "` names unknown owner domain `" + domain +
                         "` (valid: per-channel | per-node | "
                         "coordinator | kernel)"});
                continue;
            }
            report_.simState.push_back(
                {path_, m.line, m.symbol, domain, reason});
        }
    }

    void
    ruleD9()
    {
        static const std::set<std::string> kAssoc = {
            "map",           "multimap",
            "set",           "multiset",
            "unordered_map", "unordered_set",
            "unordered_multimap", "unordered_multiset"};
        static const std::set<std::string> kSmart = {
            "shared_ptr", "unique_ptr", "weak_ptr"};
        // (a) associative containers keyed by pointer.
        for (std::size_t i = 0; i + 1 < toks_.size(); ++i) {
            if (!toks_[i].ident || !kAssoc.count(toks_[i].text) ||
                toks_[i + 1].text != "<")
                continue;
            int depth = 0;
            bool ptr_key = false;
            for (std::size_t j = i + 1; j < toks_.size(); ++j) {
                const std::string &x = toks_[j].text;
                if (x == "<") {
                    ++depth;
                } else if (x == ">") {
                    if (--depth == 0)
                        break;
                } else if (x == "," && depth == 1) {
                    break; // end of the key type
                } else if (x == ";" || x == "{" || x == ")") {
                    break; // not a template argument list
                } else if (x == "*" || (toks_[j].ident &&
                                        kSmart.count(x))) {
                    ptr_key = true;
                }
            }
            if (ptr_key) {
                emit("D9", toks_[i].line,
                     "associative container `" + toks_[i].text +
                         "` keyed by a pointer: key order follows "
                         "allocation addresses, which differ run to "
                         "run (ASLR/allocator) and break replay "
                         "determinism; key by a stable id or "
                         "annotate lint:ptr-ordered-ok(<reason>)");
            }
        }
        // (b)+(c) raw pointer comparisons (`p < q`), which also
        // catches sort comparators whose pointer parameters the
        // phase-1 scan collected.
        for (std::size_t i = 1; i + 1 < toks_.size(); ++i) {
            if (toks_[i].text != "<")
                continue;
            const Token &a = toks_[i - 1];
            const Token &b = toks_[i + 1];
            if (!a.ident || !b.ident)
                continue;
            if (!pointers_.count(a.text) || !pointers_.count(b.text))
                continue;
            // Template argument lists (`foo<p>`, `foo<p, q>`) are
            // not comparisons.
            if (i + 2 < toks_.size() &&
                (toks_[i + 2].text == ">" ||
                 toks_[i + 2].text == ","))
                continue;
            emit("D9", toks_[i].line,
                 "raw pointer comparison `" + a.text + " < " +
                     b.text +
                     "`: address order differs run to run "
                     "(ASLR/allocator) and is not a replayable "
                     "sort key; compare a stable id or annotate "
                     "lint:ptr-ordered-ok(<reason>)");
        }
    }

    void
    ruleD10()
    {
        forEachUnorderedRangeFor([this](std::size_t i, std::size_t,
                                        std::size_t close) {
            // Body extent: `{...}` after the close paren, else the
            // single statement up to `;`.
            std::size_t begin = close + 1, end = toks_.size();
            if (begin < toks_.size() && toks_[begin].text == "{") {
                int depth = 0;
                for (std::size_t j = begin; j < toks_.size(); ++j) {
                    if (toks_[j].text == "{") {
                        ++depth;
                    } else if (toks_[j].text == "}" &&
                               --depth == 0) {
                        end = j;
                        break;
                    }
                }
                ++begin;
            } else {
                for (std::size_t j = begin; j < toks_.size(); ++j) {
                    if (toks_[j].text == ";") {
                        end = j;
                        break;
                    }
                }
            }
            for (std::size_t j = begin;
                 j + 1 < toks_.size() && j < end; ++j) {
                if (!toks_[j].ident || !floats_.count(toks_[j].text))
                    continue;
                const std::string &op = toks_[j + 1].text;
                if (op != "+=" && op != "-=")
                    continue;
                emit("D10", toks_[j].line,
                     "floating-point accumulation `" +
                         toks_[j].text + " " + op +
                         " ...` inside a range-for over an "
                         "unordered container: FP addition is not "
                         "associative, so a free iteration order "
                         "breaks bit-identical replays even where "
                         "D4 was judged harmless (lint:ordered-ok "
                         "does NOT cover this); accumulate over a "
                         "sorted copy or annotate "
                         "lint:allow(D10: <why>)");
            }
            (void)i;
        });
    }

    void
    ruleD12()
    {
        static const std::set<std::string> kSched = {
            "schedule", "scheduleAfter", "scheduleChain",
            "schedulePeriodic"};
        for (std::size_t i = 0; i + 1 < toks_.size(); ++i) {
            if (!toks_[i].ident || !kSched.count(toks_[i].text) ||
                toks_[i + 1].text != "(")
                continue;
            int depth = 0;
            std::size_t close = toks_.size();
            for (std::size_t j = i + 1; j < toks_.size(); ++j) {
                if (toks_[j].text == "(") {
                    ++depth;
                } else if (toks_[j].text == ")" && --depth == 0) {
                    close = j;
                    break;
                }
            }
            for (std::size_t j = i + 2; j < close; ++j) {
                if (toks_[j].text != "[")
                    continue;
                int bdepth = 0;
                std::size_t rb = close;
                for (std::size_t k = j; k < close; ++k) {
                    if (toks_[k].text == "[") {
                        ++bdepth;
                    } else if (toks_[k].text == "]" &&
                               --bdepth == 0) {
                        rb = k;
                        break;
                    }
                }
                if (rb >= close || rb + 1 >= toks_.size())
                    break;
                const std::string &after = toks_[rb + 1].text;
                if (after != "(" && after != "{") {
                    j = rb; // subscript, not a lambda
                    continue;
                }
                bool by_ref = false;
                std::string capture;
                for (std::size_t k = j + 1; k < rb; ++k) {
                    capture += toks_[k].text;
                    if (toks_[k].text == "&")
                        by_ref = true;
                }
                if (by_ref) {
                    emit("D12", toks_[j].line,
                         "event callback captures by reference "
                         "(`[" + capture +
                             "]`): the scheduled lambda outlives "
                             "the enclosing scope unless the queue "
                             "is provably drained first, so by-ref "
                             "captures of locals are "
                             "use-after-scope; capture by value "
                             "(or capture the owning object) or "
                             "annotate lint:allow(D12: <why the "
                             "queue drains first>)");
                }
                j = rb;
            }
        }
    }

    const std::string &path_;
    const StrippedSource &src_;
    const Options &opts_;
    const std::set<std::string> &unordered_;
    const std::set<std::string> &floats_;
    const std::set<std::string> &pointers_;
    const std::vector<MutableStatic> &statics_;
    Report &report_;
    std::vector<Token> toks_;
};

std::string
readFile(const fs::path &p)
{
    std::ifstream in(p, std::ios::binary);
    if (!in)
        throw std::runtime_error("deepstore_lint: cannot read " +
                                 p.string());
    std::ostringstream ss;
    ss << in.rdbuf();
    return ss.str();
}

/** Sorted list of *.cc / *.h under dir (missing dir -> empty). */
std::vector<fs::path>
sourceFilesUnder(const fs::path &dir)
{
    std::vector<fs::path> files;
    if (!fs::exists(dir))
        return files;
    for (const auto &e : fs::recursive_directory_iterator(dir)) {
        if (!e.is_regular_file())
            continue;
        auto ext = e.path().extension().string();
        if (ext == ".cc" || ext == ".h")
            files.push_back(e.path());
    }
    std::sort(files.begin(), files.end());
    return files;
}

/**
 * Blank preprocessor lines (and their backslash continuations) in
 * already-stripped code: `#include <map>` has no terminating `;`, so
 * it would otherwise bleed into the next statement the D8 scope scan
 * analyzes.
 */
std::string
blankPreprocessor(const std::string &code)
{
    std::string out = code;
    std::size_t pos = 0;
    while (pos < out.size()) {
        std::size_t eol = out.find('\n', pos);
        if (eol == std::string::npos)
            eol = out.size();
        std::size_t first = pos;
        while (first < eol &&
               std::isspace(static_cast<unsigned char>(out[first])))
            ++first;
        if (first < eol && out[first] == '#') {
            bool continues = true;
            while (continues && pos < out.size()) {
                eol = out.find('\n', pos);
                if (eol == std::string::npos)
                    eol = out.size();
                continues = eol > pos && out[eol - 1] == '\\';
                for (std::size_t i = pos; i < eol; ++i)
                    out[i] = ' ';
                pos = eol + 1;
            }
            continue;
        }
        pos = eol + 1;
    }
    return out;
}

/** JSON string escaping for the inventory / --json serializers. */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof buf, "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** 1-based line number of a character offset in @p text. */
int
lineOfOffset(const std::string &text, std::size_t off)
{
    return 1 + static_cast<int>(
                   std::count(text.begin(), text.begin() + off,
                              '\n'));
}

void
appendInventory(std::ostringstream &os, const Report &report,
                const std::string &ind)
{
    os << "{\n";
    os << ind << "  \"version\": 1,\n";
    os << ind << "  \"domains\": [\"per-channel\", \"per-node\", "
          "\"coordinator\", \"kernel\"],\n";
    os << ind << "  \"entries\": [";
    for (std::size_t i = 0; i < report.simState.size(); ++i) {
        const SimStateEntry &e = report.simState[i];
        os << (i ? "," : "") << "\n";
        os << ind << "    {\n";
        os << ind << "      \"file\": \"" << jsonEscape(e.file)
           << "\",\n";
        os << ind << "      \"line\": " << e.line << ",\n";
        os << ind << "      \"symbol\": \"" << jsonEscape(e.symbol)
           << "\",\n";
        os << ind << "      \"domain\": \"" << jsonEscape(e.domain)
           << "\",\n";
        os << ind << "      \"reason\": \"" << jsonEscape(e.reason)
           << "\"\n";
        os << ind << "    }";
    }
    if (!report.simState.empty())
        os << "\n" << ind << "  ";
    os << "]\n";
    os << ind << "}";
}

} // namespace

std::vector<std::string>
collectUnorderedNames(const std::string &content)
{
    std::vector<std::string> names;
    StrippedSource src = stripSource(content);
    std::vector<Token> toks = tokenize(src.code);
    static const std::set<std::string> kUnordered = {
        "unordered_map", "unordered_set", "unordered_multimap",
        "unordered_multiset"};
    for (std::size_t i = 0; i < toks.size(); ++i) {
        if (!toks[i].ident || !kUnordered.count(toks[i].text))
            continue;
        std::size_t j = i + 1;
        if (j >= toks.size() || toks[j].text != "<")
            continue;
        // Balance template angle brackets (tokens are single chars,
        // so >> arrives as two > tokens).
        int depth = 0;
        for (; j < toks.size(); ++j) {
            if (toks[j].text == "<")
                ++depth;
            else if (toks[j].text == ">" && --depth == 0) {
                ++j;
                break;
            } else if (toks[j].text == ";") {
                break; // malformed / not a declaration
            }
        }
        // Skip declarator decorations, take the variable name.
        while (j < toks.size() &&
               (toks[j].text == "&" || toks[j].text == "*" ||
                toks[j].text == "const"))
            ++j;
        if (j < toks.size() && toks[j].ident)
            names.push_back(toks[j].text);
    }
    std::sort(names.begin(), names.end());
    names.erase(std::unique(names.begin(), names.end()),
                names.end());
    return names;
}

std::vector<std::string>
collectFloatNames(const std::string &content)
{
    std::vector<std::string> names;
    StrippedSource src = stripSource(content);
    std::vector<Token> toks = tokenize(src.code);
    static const std::set<std::string> kFollower = {
        ";", "=", ",", ")", "{", "[", ":"};
    auto follows = [&](std::size_t j) {
        return j + 1 < toks.size() &&
               kFollower.count(toks[j + 1].text) != 0;
    };
    for (std::size_t i = 0; i < toks.size(); ++i) {
        if (!toks[i].ident ||
            (toks[i].text != "float" && toks[i].text != "double"))
            continue;
        std::size_t j = i + 1;
        while (j < toks.size() && (toks[j].text == "const" ||
                                   toks[j].text == "&"))
            ++j;
        if (j >= toks.size() || !toks[j].ident || !follows(j))
            continue; // pointer, template arg, cast, ...
        names.push_back(toks[j].text);
        // Multi-declarator: `double a = 0, b = 0;`
        int depth = 0;
        for (std::size_t k = j + 1; k < toks.size(); ++k) {
            const std::string &x = toks[k].text;
            if (x == "(" || x == "[" || x == "{") {
                ++depth;
            } else if (x == ")" || x == "]" || x == "}") {
                if (--depth < 0)
                    break;
            } else if (x == ";" && depth == 0) {
                break;
            } else if (x == "," && depth == 0) {
                std::size_t m = k + 1;
                while (m < toks.size() && (toks[m].text == "const" ||
                                           toks[m].text == "&"))
                    ++m;
                if (m < toks.size() && toks[m].ident && follows(m))
                    names.push_back(toks[m].text);
            }
        }
    }
    std::sort(names.begin(), names.end());
    names.erase(std::unique(names.begin(), names.end()),
                names.end());
    return names;
}

std::vector<std::string>
collectPointerNames(const std::string &content)
{
    std::vector<std::string> names;
    StrippedSource src = stripSource(content);
    std::vector<Token> toks = tokenize(src.code);
    static const std::set<std::string> kBoundary = {
        ";", "{", "}", "(", ",", "<", ":"};
    static const std::set<std::string> kDeclKeywords = {
        "const",    "static",       "constexpr", "constinit",
        "inline",   "extern",       "mutable",   "thread_local",
        "volatile", "register",     "auto",      "typename",
        "struct",   "class",        "using"};
    static const std::set<std::string> kFollower = {
        ";", "=", ",", ")", "[", "{", ":"};
    for (std::size_t i = 1; i + 1 < toks.size(); ++i) {
        if (toks[i].text != "*")
            continue;
        const Token &p = toks[i - 1];
        bool prev_type = p.ident;
        bool prev_deco = p.text == ">" || p.text == "*";
        if (!prev_type && !prev_deco)
            continue;
        // Declared name: `* [const] name` followed by a declarator
        // terminator.
        std::size_t j = i + 1;
        while (j < toks.size() && toks[j].text == "const")
            ++j;
        if (j >= toks.size() || !toks[j].ident)
            continue;
        if (j + 1 >= toks.size() ||
            !kFollower.count(toks[j + 1].text))
            continue;
        // Walk back over the `ns::Type` chain to the token before
        // the type name; a declaration starts at a statement
        // boundary or another declaration keyword. This is what
        // separates `Node *n;` from the multiplication `a * b`.
        std::size_t k = i - 1;
        if (prev_type) {
            while (k >= 2 && toks[k - 1].text == "::" &&
                   toks[k - 2].ident)
                k -= 2;
        }
        bool boundary_ok = true;
        std::string boundary;
        if (k >= 1) {
            const Token &b = toks[k - 1];
            boundary = b.text;
            boundary_ok =
                kBoundary.count(b.text) != 0 ||
                (b.ident && kDeclKeywords.count(b.text) != 0);
        }
        if (!boundary_ok)
            continue;
        // Parameter positions `f(a * b)` are ambiguous with calls;
        // only trust them when the type looks like one (CamelCase)
        // or cv-qualification/decoration disambiguates.
        if ((boundary == "(" || boundary == ",") && prev_type &&
            !prev_deco &&
            !std::isupper(static_cast<unsigned char>(p.text[0])))
            continue;
        names.push_back(toks[j].text);
    }
    std::sort(names.begin(), names.end());
    names.erase(std::unique(names.begin(), names.end()),
                names.end());
    return names;
}

std::vector<MutableStatic>
collectMutableStatics(const std::string &content)
{
    std::vector<MutableStatic> out;
    StrippedSource src = stripSource(content);
    std::vector<Token> toks =
        tokenize(blankPreprocessor(src.code));

    enum class Scope { Namespace, Class, Block, BraceInit };
    std::vector<Scope> stack;
    std::vector<Token> stmt;

    // Statement keywords that mean "not a variable declaration".
    static const std::set<std::string> kSkip = {
        "using",     "typedef",   "extern",   "friend",
        "template",  "operator",  "class",    "struct",
        "union",     "enum",      "namespace", "static_assert",
        "return",    "if",        "for",      "while",
        "do",        "switch",    "case",     "break",
        "continue",  "goto",      "throw",    "delete",
        "public",    "private",   "protected", "default",
        "else",      "try",       "catch",    "sizeof",
        "constexpr", "consteval", "concept",  "requires",
        "asm"};

    auto inBraceInit = [&] {
        return !stack.empty() && stack.back() == Scope::BraceInit;
    };

    auto analyze = [&](const std::vector<Token> &s) {
        if (s.empty())
            return;
        bool has_static = false;
        for (const Token &t : s)
            if (t.ident &&
                (t.text == "static" || t.text == "thread_local"))
                has_static = true;
        bool all_namespace = true;
        for (Scope sc : stack)
            if (sc != Scope::Namespace)
                all_namespace = false;
        if (!has_static && !all_namespace)
            return;
        std::string kind;
        if (all_namespace)
            kind = "global";
        else if (stack.back() == Scope::Class)
            kind = "class-static";
        else
            kind = "local-static";
        for (const Token &t : s)
            if (t.ident && kSkip.count(t.text))
                return;
        // Pre-initializer portion: up to the first `=` outside
        // parens/brackets.
        std::size_t end = s.size();
        int depth = 0;
        for (std::size_t i = 0; i < s.size(); ++i) {
            const std::string &x = s[i].text;
            if (x == "(" || x == "[")
                ++depth;
            else if (x == ")" || x == "]")
                --depth;
            else if (x == "=" && depth == 0) {
                end = i;
                break;
            }
        }
        int idents = 0;
        for (std::size_t i = 0; i < end; ++i) {
            if (s[i].text == "(")
                return; // function declaration / ctor-call init
            if (s[i].ident)
                ++idents;
        }
        if (idents < 2)
            return; // need at least a type and a name
        // const-ness: `const` without a later `*` declares an
        // immutable value (or pointer); `const T *p` leaves the
        // pointer itself mutable.
        std::size_t last_const = end;
        for (std::size_t i = 0; i < end; ++i)
            if (s[i].ident && s[i].text == "const")
                last_const = i;
        if (last_const != end) {
            bool star_after = false;
            for (std::size_t i = last_const + 1; i < end; ++i)
                if (s[i].text == "*")
                    star_after = true;
            if (!star_after)
                return;
        }
        // Name: last identifier before the initializer, skipping a
        // trailing `[array-extent]`.
        std::size_t i = end;
        while (i > 0) {
            --i;
            if (s[i].text == "]") {
                int bd = 0;
                while (i > 0) {
                    if (s[i].text == "]")
                        ++bd;
                    else if (s[i].text == "[" && --bd == 0)
                        break;
                    --i;
                }
                continue;
            }
            if (s[i].ident) {
                out.push_back({s[i].line, s[i].text, kind});
                return;
            }
            if (s[i].text == ">" || s[i].text == "*" ||
                s[i].text == "&")
                continue;
            return; // unexpected shape; not a plain declaration
        }
    };

    for (const Token &t : toks) {
        if (t.text == "{") {
            if (inBraceInit()) {
                stack.push_back(Scope::BraceInit);
                continue;
            }
            bool has_eq = false, has_paren = false;
            int depth = 0;
            bool has_ns = false, has_class = false;
            for (const Token &s : stmt) {
                if (s.text == "(" || s.text == "[") {
                    ++depth;
                    if (s.text == "(")
                        has_paren = true;
                } else if (s.text == ")" || s.text == "]") {
                    --depth;
                } else if (s.text == "=" && depth == 0) {
                    has_eq = true;
                } else if (s.ident) {
                    if (s.text == "namespace")
                        has_ns = true;
                    else if (s.text == "class" ||
                             s.text == "struct" ||
                             s.text == "union" || s.text == "enum")
                        has_class = true;
                }
            }
            if (has_eq) {
                stack.push_back(Scope::BraceInit);
                // keep stmt: the declaration ends at the `;` after
                // the brace initializer
            } else if (has_ns) {
                stack.push_back(Scope::Namespace);
                stmt.clear();
            } else if (has_class) {
                stack.push_back(Scope::Class);
                stmt.clear();
            } else if (!stmt.empty() && stmt.back().ident &&
                       !kSkip.count(stmt.back().text) &&
                       !has_paren) {
                // `static int hits{0};` — direct brace init
                stack.push_back(Scope::BraceInit);
            } else {
                stack.push_back(Scope::Block);
                stmt.clear();
            }
        } else if (t.text == "}") {
            if (stack.empty())
                continue;
            Scope popped = stack.back();
            stack.pop_back();
            if (popped != Scope::BraceInit)
                stmt.clear();
        } else if (t.text == ";") {
            if (inBraceInit())
                continue;
            analyze(stmt);
            stmt.clear();
        } else if (!inBraceInit()) {
            stmt.push_back(t);
        }
    }
    return out;
}

void
lintSource(const std::string &path, const std::string &content,
           const Options &opts, const FileContext &ctx,
           Report &report)
{
    std::set<std::string> unordered(ctx.unorderedNames.begin(),
                                    ctx.unorderedNames.end());
    for (const auto &n : collectUnorderedNames(content))
        unordered.insert(n);
    std::set<std::string> floats(ctx.floatNames.begin(),
                                 ctx.floatNames.end());
    for (const auto &n : collectFloatNames(content))
        floats.insert(n);
    std::set<std::string> pointers(ctx.pointerNames.begin(),
                                   ctx.pointerNames.end());
    for (const auto &n : collectPointerNames(content))
        pointers.insert(n);
    std::vector<MutableStatic> statics =
        collectMutableStatics(content);
    StrippedSource src = stripSource(content);
    FileLinter linter(path, src, opts, unordered, floats, pointers,
                      statics, report);
    linter.run();
}

void
lintSource(const std::string &path, const std::string &content,
           const Options &opts,
           const std::vector<std::string> &unordered_names,
           Report &report)
{
    FileContext ctx;
    ctx.unorderedNames = unordered_names;
    lintSource(path, content, opts, ctx, report);
}

Report
lintTree(const std::string &root, const Options &opts)
{
    Report report;
    fs::path rootp(root);

    std::vector<fs::path> files =
        sourceFilesUnder(rootp / "src");
    for (const auto &p : sourceFilesUnder(rootp / "tests"))
        files.push_back(p);

    // ---- Phase 1: cross-TU index --------------------------------
    // Headers declare the members, .cc files use them, so the name
    // sets are collected tree-wide. Unordered-container names are
    // shared as-is; float/pointer names are only shared when they
    // look like members (trailing underscore) — sharing every local
    // `i`/`p` across TUs would drown D9/D10 in collisions.
    FileContext ctx;
    std::vector<std::pair<std::string, std::string>> contents;
    contents.reserve(files.size());
    for (const auto &p : files) {
        std::string text = readFile(p);
        for (const auto &n : collectUnorderedNames(text))
            ctx.unorderedNames.push_back(n);
        for (const auto &n : collectFloatNames(text))
            if (!n.empty() && n.back() == '_')
                ctx.floatNames.push_back(n);
        for (const auto &n : collectPointerNames(text))
            if (!n.empty() && n.back() == '_')
                ctx.pointerNames.push_back(n);
        contents.emplace_back(
            fs::relative(p, rootp).generic_string(),
            std::move(text));
    }
    for (auto *v : {&ctx.unorderedNames, &ctx.floatNames,
                    &ctx.pointerNames}) {
        std::sort(v->begin(), v->end());
        v->erase(std::unique(v->begin(), v->end()), v->end());
    }

    // ---- Phase 2: per-file token rules --------------------------
    for (const auto &[rel, text] : contents)
        lintSource(rel, text, opts, ctx, report);

    // ---- D5: structural checks ----------------------------------
    if (opts.enabled("D5")) {
        // Every tests/.../test_*.cc is registered in
        // tests/CMakeLists.txt.
        fs::path cml = rootp / "tests" / "CMakeLists.txt";
        std::string cml_text =
            fs::exists(cml) ? readFile(cml) : std::string();
        for (const auto &p : sourceFilesUnder(rootp / "tests")) {
            std::string base = p.filename().string();
            if (base.rfind("test_", 0) != 0 ||
                p.extension() != ".cc")
                continue;
            std::string rel =
                fs::relative(p, rootp / "tests").generic_string();
            if (cml_text.find(rel) == std::string::npos) {
                report.findings.push_back(
                    {"tests/CMakeLists.txt", 1, "D5",
                     "test file tests/" + rel +
                         " is not registered in "
                         "tests/CMakeLists.txt (it would silently "
                         "never run)"});
            }
        }
        // Every bench/bench_*.cc emits a JsonReport.
        for (const auto &p : sourceFilesUnder(rootp / "bench")) {
            std::string base = p.filename().string();
            if (base.rfind("bench_", 0) != 0 ||
                p.extension() != ".cc")
                continue;
            StrippedSource src = stripSource(readFile(p));
            bool has = false;
            for (const Token &t : tokenize(src.code)) {
                if (t.ident && t.text == "JsonReport") {
                    has = true;
                    break;
                }
            }
            if (has)
                continue;
            // Structural rule, so the suppression is file-level: a
            // lint:allow(D5: ...) comment anywhere in the bench.
            bool suppressed = false;
            for (std::size_t l = 0; l < src.comments.size(); ++l) {
                for (const Annotation &a :
                     parseAnnotations(src.comments[l])) {
                    if (a.rule != "D5")
                        continue;
                    std::string reason = trim(a.reason);
                    if (reason.empty()) {
                        report.findings.push_back(
                            {"bench/" + base,
                             static_cast<int>(l + 1), "D5",
                             "suppression missing a reason: write "
                             "lint:allow(D5: <why>)"});
                    } else {
                        report.suppressions.push_back(
                            {"bench/" + base,
                             static_cast<int>(l + 1), "D5",
                             reason});
                    }
                    suppressed = true;
                }
            }
            if (!suppressed) {
                report.findings.push_back(
                    {"bench/" + base, 1, "D5",
                     "bench binary emits no JsonReport: CI and the "
                     "plotting scripts consume BENCH_<name>.json, "
                     "not the text tables"});
            }
        }
    }

    // ---- D11: stats schema completeness -------------------------
    if (opts.enabled("D11")) {
        const std::string schema_rel = "src/common/stats_schema.h";
        struct SchemaEntry
        {
            int line = 0;
            bool row = false;
        };
        std::map<std::string, SchemaEntry> schema;
        std::string schema_text;
        for (const auto &[rel, text] : contents)
            if (rel == schema_rel)
                schema_text = text;
        static const std::regex kEntry(
            R"(\bDS_STAT(_ROW)?\s*\(\s*"([^"]+)\")");
        for (auto it = std::sregex_iterator(schema_text.begin(),
                                            schema_text.end(),
                                            kEntry);
             it != std::sregex_iterator(); ++it) {
            SchemaEntry e;
            e.line = lineOfOffset(schema_text,
                                  static_cast<std::size_t>(
                                      it->position(0)));
            e.row = (*it)[1].matched;
            schema[(*it)[2]] = e;
        }

        // Literal-preserving strips of every src/ file (the stat
        // names live inside string literals).
        std::vector<std::pair<std::string, StrippedSource>> kept;
        for (const auto &[rel, text] : contents)
            if (rel.rfind("src/", 0) == 0 && rel != schema_rel)
                kept.emplace_back(rel, stripSource(text, true));

        static const std::regex kGet(
            R"([.>]\s*get\s*\(\s*"([^"]+)\")");
        static const std::regex kRow(
            R"(<<\s*"\s*([A-Za-z_][A-Za-z0-9_]*(?:\.[A-Za-z0-9_]+)+)\s*=)");
        for (const auto &[rel, src] : kept) {
            for (auto it = std::sregex_iterator(src.code.begin(),
                                                src.code.end(),
                                                kGet);
                 it != std::sregex_iterator(); ++it) {
                std::string name = (*it)[1];
                int line = lineOfOffset(
                    src.code,
                    static_cast<std::size_t>(it->position(0)));
                auto s = schema.find(name);
                if (s == schema.end()) {
                    emitFinding(
                        report, src, rel, "D11", line,
                        "stat `" + name +
                            "` is bumped via StatGroup::get but "
                            "not registered in " +
                            schema_rel + "; add DS_STAT(\"" + name +
                            "\", \"<what it counts>\") so the "
                            "stats surface stays complete");
                } else if (s->second.row) {
                    emitFinding(
                        report, src, rel, "D11", line,
                        "stat `" + name +
                            "` is registered as DS_STAT_ROW (a "
                            "manually printed row) but used via "
                            "StatGroup::get; register it as "
                            "DS_STAT");
                }
            }
            for (auto it = std::sregex_iterator(src.code.begin(),
                                                src.code.end(),
                                                kRow);
                 it != std::sregex_iterator(); ++it) {
                std::string name = (*it)[1];
                int line = lineOfOffset(
                    src.code,
                    static_cast<std::size_t>(it->position(0)));
                auto s = schema.find(name);
                if (s == schema.end()) {
                    emitFinding(
                        report, src, rel, "D11", line,
                        "manually printed stats row `" + name +
                            "` is not registered in " + schema_rel +
                            "; the guarded-row idiom is "
                            "first-class: add DS_STAT_ROW(\"" +
                            name +
                            "\", \"<when the row appears>\")");
                } else if (!s->second.row) {
                    emitFinding(
                        report, src, rel, "D11", line,
                        "stat `" + name +
                            "` is registered as DS_STAT but "
                            "printed as a manual row; register it "
                            "as DS_STAT_ROW documenting when the "
                            "row appears");
                }
            }
        }
        // Stale entries: a registered name no src/ file references
        // (the search is a substring match over literal-preserving
        // code, so dynamically composed names — e.g. a ternary
        // picking between two literals — still count).
        if (!schema.empty()) {
            StrippedSource schema_src =
                stripSource(schema_text, true);
            for (const auto &[name, entry] : schema) {
                bool referenced = false;
                for (const auto &[rel, src] : kept) {
                    if (src.code.find(name) != std::string::npos) {
                        referenced = true;
                        break;
                    }
                }
                if (!referenced) {
                    emitFinding(
                        report, schema_src, schema_rel, "D11",
                        entry.line,
                        "registered stat `" + name +
                            "` is referenced nowhere under src/ — "
                            "stale schema entry (remove it, or "
                            "wire up the counter)");
                }
            }
        }
    }

    // ---- D8 inventory: deterministic order ----------------------
    std::sort(report.simState.begin(), report.simState.end(),
              [](const SimStateEntry &a, const SimStateEntry &b) {
                  if (a.file != b.file)
                      return a.file < b.file;
                  if (a.line != b.line)
                      return a.line < b.line;
                  return a.symbol < b.symbol;
              });
    return report;
}

std::string
formatReport(const Report &report, bool verbose)
{
    std::ostringstream os;
    for (const Finding &f : report.findings)
        os << f.file << ":" << f.line << ": [" << f.rule << "] "
           << f.message << "\n";
    if (verbose) {
        for (const Suppression &s : report.suppressions)
            os << "note: " << s.file << ":" << s.line << ": ["
               << s.rule << "] suppressed: " << s.reason << "\n";
    }
    os << "deepstore_lint: " << report.findings.size()
       << " finding(s), " << report.suppressions.size()
       << " suppression(s) honoured\n";
    return os.str();
}

std::string
formatInventory(const Report &report)
{
    std::ostringstream os;
    appendInventory(os, report, "");
    os << "\n";
    return os.str();
}

std::string
formatJson(const Report &report)
{
    std::map<std::string, std::pair<int, int>> by_rule;
    for (const Finding &f : report.findings)
        ++by_rule[f.rule].first;
    for (const Suppression &s : report.suppressions)
        ++by_rule[s.rule].second;

    std::ostringstream os;
    os << "{\n";
    os << "  \"counts\": {\n";
    os << "    \"findings\": " << report.findings.size() << ",\n";
    os << "    \"suppressions\": " << report.suppressions.size()
       << ",\n";
    os << "    \"byRule\": {";
    bool first = true;
    for (const auto &[rule, counts] : by_rule) {
        os << (first ? "" : ",") << "\n      \"" << rule
           << "\": {\"findings\": " << counts.first
           << ", \"suppressions\": " << counts.second << "}";
        first = false;
    }
    if (!by_rule.empty())
        os << "\n    ";
    os << "},\n";
    os << "    \"simState\": " << report.simState.size() << "\n";
    os << "  },\n";
    os << "  \"findings\": [";
    for (std::size_t i = 0; i < report.findings.size(); ++i) {
        const Finding &f = report.findings[i];
        os << (i ? "," : "") << "\n    {\"file\": \""
           << jsonEscape(f.file) << "\", \"line\": " << f.line
           << ", \"rule\": \"" << f.rule << "\", \"message\": \""
           << jsonEscape(f.message) << "\"}";
    }
    if (!report.findings.empty())
        os << "\n  ";
    os << "],\n";
    os << "  \"suppressions\": [";
    for (std::size_t i = 0; i < report.suppressions.size(); ++i) {
        const Suppression &s = report.suppressions[i];
        os << (i ? "," : "") << "\n    {\"file\": \""
           << jsonEscape(s.file) << "\", \"line\": " << s.line
           << ", \"rule\": \"" << s.rule << "\", \"reason\": \""
           << jsonEscape(s.reason) << "\"}";
    }
    if (!report.suppressions.empty())
        os << "\n  ";
    os << "],\n";
    os << "  \"simStateInventory\": ";
    appendInventory(os, report, "  ");
    os << "\n}\n";
    return os.str();
}

} // namespace deepstore::lint
