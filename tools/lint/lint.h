/**
 * @file
 * deepstore-lint: determinism & sim-invariant static analysis.
 *
 * The simulator's correctness story rests on replayability: the
 * tick-identical regression pins and the analytic-vs-live parity
 * tests only mean something if every run of the simulator is a pure
 * function of its inputs and seeds. This checker turns the unwritten
 * rules that guarantee that into named, machine-enforced,
 * suppressible rules (see DESIGN.md §9):
 *
 *   D1  no wall-clock APIs (std::chrono::system_clock/steady_clock,
 *       time(), clock(), gettimeofday, ...) outside bench/
 *   D2  no unseeded/non-portable randomness (rand(),
 *       std::random_device, std::mt19937, ...) — all RNG flows
 *       through common/rng (exempt, it *is* the RNG)
 *   D3  no direct sim-time accumulation (`simSeconds_ +=`-style
 *       bumps of *Seconds* members) outside core/time_ledger and
 *       src/sim — time advances only through TimeLedger/EventQueue
 *   D4  no range-for iteration over unordered_map/unordered_set
 *       variables (iteration order is libstdc++-specific and
 *       pointer-dependent) unless annotated
 *       `// lint:ordered-ok(<reason>)`
 *   D5  structural: every tests/.../test_*.cc is registered in
 *       tests/CMakeLists.txt; every bench/bench_*.cc emits a
 *       JsonReport
 *   D6  no closed-form TimeLedger duration advances in the live
 *       scan path: `<...ledger...>.advance(` / `->advance(` calls
 *       under src/core/ (time_ledger itself exempt) are findings —
 *       scan/compute/weight/probe/top-K timing must come from
 *       scheduled events on the shared resources (EventQueue,
 *       ComputeArbiter, BandwidthLink), not analytic quotients
 *       pushed into the ledger. Host-interface fast paths that are
 *       genuinely not part of the scan datapath carry a reasoned
 *       `// lint:allow(D6: ...)` allowlist annotation.
 *   D7  no direct member access on Ssd/Ftl objects (`ssd_->...`,
 *       `ssd().hostRead(...)`, `ftl().translate(...)`) under
 *       src/core/ outside the node/array layer (core/ssd_node and
 *       core/array_coordinator exempt — they *are* the layer).
 *       Everything above goes through SsdNode/ArrayCoordinator
 *       passthroughs, so per-node geometry, fault domains, and
 *       whole-drive death stay encapsulated behind the array.
 *       Deliberate escapes carry `// lint:allow(D7: ...)`.
 *
 * v2 grows the checker from a per-file token scanner into a
 * two-phase analyzer for the parallel-DES groundwork: phase 1 builds
 * a lightweight cross-TU index over the tree (include graph,
 * float/pointer declarations, mutable global/static state, Stats
 * sites, schedule() sites); phase 2 runs five more rules on top:
 *
 *   D8  every mutable global / namespace-scope / class-static /
 *       function-local-static variable under src/ carries a
 *       `// lint:sim-state(<domain>: <reason>)` annotation naming
 *       its owner domain (per-channel | per-node | coordinator |
 *       kernel). Annotated symbols are emitted as the shared-state
 *       inventory (tools/lint/sim_state_inventory.json) that the
 *       parallel-DES kernel will use to decide what gets sharded
 *       vs. barriered; CI diffs the emitted inventory against the
 *       committed one.
 *   D9  address-order nondeterminism: ordered/unordered associative
 *       containers keyed by raw pointers (std::map<T*,...>,
 *       std::set<T*>, smart-pointer keys), sort comparators that
 *       compare pointer parameters with `<`, and raw `p < q`
 *       comparisons between known pointer variables. Pointer values
 *       differ run to run (ASLR, allocator), so any order derived
 *       from them is irreproducible. Annotate
 *       `// lint:ptr-ordered-ok(<reason>)` (or lint:allow(D9: ...))
 *       for deliberate, order-insensitive uses.
 *   D10 floating-point accumulation (`+=`/`-=` on a float/double
 *       variable, cross-checked against the phase-1 type index)
 *       inside a range-for over an unordered container: FP addition
 *       is not associative, so a free iteration order silently
 *       breaks bit-identical replays even where D4 was judged
 *       harmless. A D4 `lint:ordered-ok` does NOT cover it; a
 *       deliberate escape needs `lint:allow(D10: ...)`.
 *   D11 structural stats completeness: every stat name used with
 *       `StatGroup::get("...")` under src/ is registered in
 *       src/common/stats_schema.h (DS_STAT), every manually printed
 *       `os << "name = ..."` stat row is registered as DS_STAT_ROW
 *       (the first-class form of the guarded-row idiom — the entry
 *       documents when the row appears), and every registered name
 *       is still referenced somewhere in src/ (no stale schema
 *       entries).
 *   D12 dangling event captures: schedule()/scheduleAfter()/
 *       scheduleChain()/schedulePeriodic() lambdas under src/ that
 *       capture by reference (`[&]`, `[&x]`). The callback outlives
 *       the enclosing scope unless the queue is provably drained
 *       first, so by-ref captures of locals are use-after-scope
 *       bombs. Deliberate drain-before-return sites carry
 *       `lint:allow(D12: ...)`.
 *
 * Suppressions (same line or the line directly above the finding):
 *
 *   // lint:allow(D1: <reason>)      suppress any rule, with reason
 *   // lint:ordered-ok(<reason>)     D4-specific alias
 *   // lint:ptr-ordered-ok(<reason>) D9-specific alias
 *   // lint:sim-state(<domain>: <reason>)  D8 inventory annotation
 *
 * A suppression without a written reason is itself a finding.
 *
 * Token/line-level by design: no libclang dependency, so the checker
 * builds from the same CMake tree with zero extra packages and runs
 * as an ordinary ctest test.
 */

#ifndef DEEPSTORE_TOOLS_LINT_H
#define DEEPSTORE_TOOLS_LINT_H

#include <string>
#include <vector>

namespace deepstore::lint {

/** One rule violation. */
struct Finding
{
    std::string file;    ///< path as given to the linter
    int line = 0;        ///< 1-based line number
    std::string rule;    ///< "D1".."D12"
    std::string message; ///< human-readable explanation
};

/** One honoured suppression (finding that was annotated away). */
struct Suppression
{
    std::string file;
    int line = 0;
    std::string rule;
    std::string reason;
};

/**
 * One shared-state inventory entry: a mutable global/static under
 * src/ together with the owner domain its lint:sim-state annotation
 * assigned. The parallel-DES PR consumes this to decide which state
 * gets sharded per worker (per-channel / per-node), which stays on
 * the coordinator, and which must be frozen before threads start
 * (kernel).
 */
struct SimStateEntry
{
    std::string file;
    int line = 0;
    std::string symbol;
    std::string domain; ///< per-channel | per-node | coordinator | kernel
    std::string reason;
};

/** Result of a lint run. */
struct Report
{
    std::vector<Finding> findings;
    std::vector<Suppression> suppressions;
    std::vector<SimStateEntry> simState; ///< D8 inventory (tree mode)

    bool clean() const { return findings.empty(); }
};

/** Linter options. */
struct Options
{
    /** Rules to run (e.g. {"D1","D4"}). Empty means all rules. */
    std::vector<std::string> rules;

    bool
    enabled(const std::string &rule) const
    {
        if (rules.empty())
            return true;
        for (const auto &r : rules)
            if (r == rule)
                return true;
        return false;
    }
};

/**
 * Source text with comments and string/char literals blanked out
 * (replaced by spaces, newlines preserved) plus the per-line comment
 * text (for `lint:` annotations). Exposed for the linter's own tests.
 *
 * When @p keep_literals is true the contents of string literals stay
 * in `code` (comments are still blanked): the phase-1 stats passes
 * need the literal stat names.
 */
struct StrippedSource
{
    std::string code;                   ///< literal-free code text
    std::vector<std::string> comments;  ///< comments[i] = line i+1
};

/** Strip comments and string/char literals (handles raw strings). */
StrippedSource stripSource(const std::string &content,
                           bool keep_literals = false);

/**
 * Cross-TU context for the per-file token rules: name sets collected
 * over the whole tree in phase 1 and fed to every file's phase-2 run
 * (headers declare the members; the .cc files use them).
 */
struct FileContext
{
    /** Variables known to be unordered containers (D4/D10). */
    std::vector<std::string> unorderedNames;
    /** Variables known to be float/double (D10). */
    std::vector<std::string> floatNames;
    /** Variables known to be raw pointers (D9). */
    std::vector<std::string> pointerNames;
};

/**
 * Run the token-level rules (D1–D4, D6–D10, D12) on one in-memory
 * file.
 *
 * @param path     path used for exemption matching and reporting
 * @param content  full file text
 * @param ctx      cross-TU name sets (names declared inside
 *                 @p content are found automatically)
 */
void lintSource(const std::string &path, const std::string &content,
                const Options &opts, const FileContext &ctx,
                Report &report);

/** Back-compat convenience: context with unordered names only. */
void lintSource(const std::string &path, const std::string &content,
                const Options &opts,
                const std::vector<std::string> &unordered_names,
                Report &report);

/**
 * Collect names of variables/members declared with an
 * unordered_map/unordered_set type in @p content (for D4/D10).
 */
std::vector<std::string>
collectUnorderedNames(const std::string &content);

/** Collect names declared float/double in @p content (for D10). */
std::vector<std::string>
collectFloatNames(const std::string &content);

/** Collect names declared as raw pointers in @p content (for D9). */
std::vector<std::string>
collectPointerNames(const std::string &content);

/**
 * One mutable global/static declaration found by the phase-1 state
 * scan (before annotation matching). Exposed for the linter's tests.
 */
struct MutableStatic
{
    int line = 0;
    std::string symbol;
    /** "global" | "class-static" | "local-static" */
    std::string kind;
};

/** Phase-1 scan for mutable global/static state (D8). */
std::vector<MutableStatic>
collectMutableStatics(const std::string &content);

/**
 * Tree mode: phase 1 walks <root>/src and <root>/tests (*.cc, *.h,
 * sorted) building the cross-TU index, then phase 2 runs every
 * per-file rule with that context plus the structural passes (D5,
 * D8 inventory, D11 stats completeness).
 */
Report lintTree(const std::string &root, const Options &opts);

/** Render findings + suppression notes as "file:line: [Dk] msg". */
std::string formatReport(const Report &report, bool verbose);

/**
 * Serialize the D8 shared-state inventory deterministically (sorted
 * by file, line). This exact byte stream is what gets committed as
 * tools/lint/sim_state_inventory.json and what CI diffs against.
 */
std::string formatInventory(const Report &report);

/**
 * Serialize the whole report (findings, suppressions, per-rule
 * counts, and the D8 inventory) as JSON for the `--json` CLI flag;
 * CI archives it as the static-analysis artifact.
 */
std::string formatJson(const Report &report);

} // namespace deepstore::lint

#endif // DEEPSTORE_TOOLS_LINT_H
