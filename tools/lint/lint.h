/**
 * @file
 * deepstore-lint: determinism & sim-invariant static analysis.
 *
 * The simulator's correctness story rests on replayability: the
 * tick-identical regression pins and the analytic-vs-live parity
 * tests only mean something if every run of the simulator is a pure
 * function of its inputs and seeds. This checker turns the unwritten
 * rules that guarantee that into named, machine-enforced,
 * suppressible rules (see DESIGN.md §9):
 *
 *   D1  no wall-clock APIs (std::chrono::system_clock/steady_clock,
 *       time(), clock(), gettimeofday, ...) outside bench/
 *   D2  no unseeded/non-portable randomness (rand(),
 *       std::random_device, std::mt19937, ...) — all RNG flows
 *       through common/rng (exempt, it *is* the RNG)
 *   D3  no direct sim-time accumulation (`simSeconds_ +=`-style
 *       bumps of *Seconds* members) outside core/time_ledger and
 *       src/sim — time advances only through TimeLedger/EventQueue
 *   D4  no range-for iteration over unordered_map/unordered_set
 *       variables (iteration order is libstdc++-specific and
 *       pointer-dependent) unless annotated
 *       `// lint:ordered-ok(<reason>)`
 *   D5  structural: every tests/.../test_*.cc is registered in
 *       tests/CMakeLists.txt; every bench/bench_*.cc emits a
 *       JsonReport
 *   D6  no closed-form TimeLedger duration advances in the live
 *       scan path: `<...ledger...>.advance(` / `->advance(` calls
 *       under src/core/ (time_ledger itself exempt) are findings —
 *       scan/compute/weight/probe/top-K timing must come from
 *       scheduled events on the shared resources (EventQueue,
 *       ComputeArbiter, BandwidthLink), not analytic quotients
 *       pushed into the ledger. Host-interface fast paths that are
 *       genuinely not part of the scan datapath carry a reasoned
 *       `// lint:allow(D6: ...)` allowlist annotation.
 *   D7  no direct member access on Ssd/Ftl objects (`ssd_->...`,
 *       `ssd().hostRead(...)`, `ftl().translate(...)`) under
 *       src/core/ outside the node/array layer (core/ssd_node and
 *       core/array_coordinator exempt — they *are* the layer).
 *       Everything above goes through SsdNode/ArrayCoordinator
 *       passthroughs, so per-node geometry, fault domains, and
 *       whole-drive death stay encapsulated behind the array.
 *       Deliberate escapes carry `// lint:allow(D7: ...)`.
 *
 * Suppressions (same line or the line directly above the finding):
 *
 *   // lint:allow(D1: <reason>)      suppress any rule, with reason
 *   // lint:ordered-ok(<reason>)     D4-specific alias
 *
 * A suppression without a written reason is itself a finding.
 *
 * Token/line-level by design: no libclang dependency, so the checker
 * builds from the same CMake tree with zero extra packages and runs
 * as an ordinary ctest test.
 */

#ifndef DEEPSTORE_TOOLS_LINT_H
#define DEEPSTORE_TOOLS_LINT_H

#include <string>
#include <vector>

namespace deepstore::lint {

/** One rule violation. */
struct Finding
{
    std::string file;    ///< path as given to the linter
    int line = 0;        ///< 1-based line number
    std::string rule;    ///< "D1".."D7"
    std::string message; ///< human-readable explanation
};

/** One honoured suppression (finding that was annotated away). */
struct Suppression
{
    std::string file;
    int line = 0;
    std::string rule;
    std::string reason;
};

/** Result of a lint run. */
struct Report
{
    std::vector<Finding> findings;
    std::vector<Suppression> suppressions;

    bool clean() const { return findings.empty(); }
};

/** Linter options. */
struct Options
{
    /** Rules to run (e.g. {"D1","D4"}). Empty means all rules. */
    std::vector<std::string> rules;

    bool
    enabled(const std::string &rule) const
    {
        if (rules.empty())
            return true;
        for (const auto &r : rules)
            if (r == rule)
                return true;
        return false;
    }
};

/**
 * Source text with comments and string/char literals blanked out
 * (replaced by spaces, newlines preserved) plus the per-line comment
 * text (for `lint:` annotations). Exposed for the linter's own tests.
 */
struct StrippedSource
{
    std::string code;                   ///< literal-free code text
    std::vector<std::string> comments;  ///< comments[i] = line i+1
};

/** Strip comments and string/char literals (handles raw strings). */
StrippedSource stripSource(const std::string &content);

/**
 * Run the token-level rules (D1–D4, D6, D7) on one in-memory file.
 *
 * @param path     path used for exemption matching and reporting
 * @param content  full file text
 * @param unordered_names  extra variable names known to be
 *                 unordered containers (for D4 across files); names
 *                 declared inside @p content are found automatically
 */
void lintSource(const std::string &path, const std::string &content,
                const Options &opts,
                const std::vector<std::string> &unordered_names,
                Report &report);

/**
 * Collect names of variables/members declared with an
 * unordered_map/unordered_set type in @p content (for D4).
 */
std::vector<std::string>
collectUnorderedNames(const std::string &content);

/**
 * Tree mode: walk <root>/src and <root>/tests (*.cc, *.h, sorted),
 * run D1–D4, D6 and D7 on every file, then run the structural D5
 * checks against <root>/tests/CMakeLists.txt and <root>/bench.
 */
Report lintTree(const std::string &root, const Options &opts);

/** Render findings + suppression notes as "file:line: [Dk] msg". */
std::string formatReport(const Report &report, bool verbose);

} // namespace deepstore::lint

#endif // DEEPSTORE_TOOLS_LINT_H
